package traceio

import (
	"bytes"
	"compress/gzip"
	"strings"
	"testing"

	"sigstream/internal/gen"
	"sigstream/internal/stream"
)

func sample() *stream.Stream {
	return gen.Generate(gen.Config{N: 1000, M: 50, Periods: 10, Skew: 1.0, Seed: 3})
}

func TestTextRoundTrip(t *testing.T) {
	s := sample()
	var buf bytes.Buffer
	if err := WriteText(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Items) != len(s.Items) {
		t.Fatalf("item count %d, want %d", len(got.Items), len(s.Items))
	}
	for i := range s.Items {
		if got.Items[i] != s.Items[i] {
			t.Fatalf("item %d differs", i)
		}
	}
	if got.Periods != s.Periods {
		t.Fatalf("periods %d, want %d", got.Periods, s.Periods)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	s := sample()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Items) != len(s.Items) || got.Periods != s.Periods {
		t.Fatalf("shape %d/%d, want %d/%d", len(got.Items), got.Periods,
			len(s.Items), s.Periods)
	}
	for i := range s.Items {
		if got.Items[i] != s.Items[i] {
			t.Fatalf("item %d differs", i)
		}
	}
}

func TestReadTextWithoutPeriodColumn(t *testing.T) {
	in := "1\n2\n3\n4\n5\n"
	s, err := ReadText(strings.NewReader(in), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Items) != 5 {
		t.Fatalf("items %d, want 5", len(s.Items))
	}
	if s.Periods != 3 { // ceil(5/2)
		t.Fatalf("periods %d, want 3", s.Periods)
	}
}

func TestReadTextSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n1 0\n\n2 0\n# trailing\n3 1\n"
	s, err := ReadText(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Items) != 3 || s.Periods != 2 {
		t.Fatalf("got %d items / %d periods, want 3/2", len(s.Items), s.Periods)
	}
}

func TestReadTextErrors(t *testing.T) {
	if _, err := ReadText(strings.NewReader("notanumber\n"), 0); err == nil {
		t.Fatal("bad item accepted")
	}
	if _, err := ReadText(strings.NewReader("1 x\n"), 0); err == nil {
		t.Fatal("bad period accepted")
	}
}

func TestReadBinaryErrors(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := ReadBinary(strings.NewReader("XXXX0000000000000000")); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Truncated body.
	s := sample()
	var buf bytes.Buffer
	_ = WriteBinary(&buf, s)
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestReadTextEmptyStreamGetsOnePeriod(t *testing.T) {
	s, err := ReadText(strings.NewReader(""), 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Periods != 1 {
		t.Fatalf("periods %d, want 1", s.Periods)
	}
}

// TestBinaryFormatGolden pins the on-disk format: byte-for-byte layout of
// a tiny trace. Any change here is a format break and must bump the
// version field instead.
func TestBinaryFormatGolden(t *testing.T) {
	s := &stream.Stream{
		Items:   []stream.Item{0x0102030405060708, 0x1112131415161718},
		Periods: 3,
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	want := []byte{
		'S', 'G', 'T', 'R', // magic
		1, 0, 0, 0, // version 1 LE
		3, 0, 0, 0, // periods
		2, 0, 0, 0, // item count
		0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01, // item 0 LE
		0x18, 0x17, 0x16, 0x15, 0x14, 0x13, 0x12, 0x11, // item 1 LE
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("binary format drifted:\n got %x\nwant %x", buf.Bytes(), want)
	}
}

func TestMaybeGzip(t *testing.T) {
	s := sample()
	// Gzipped text trace round-trips.
	var plain bytes.Buffer
	if err := WriteText(&plain, s); err != nil {
		t.Fatal(err)
	}
	var zipped bytes.Buffer
	zw := gzip.NewWriter(&zipped)
	if _, err := zw.Write(plain.Bytes()); err != nil {
		t.Fatal(err)
	}
	zw.Close()
	r, err := MaybeGzip(&zipped)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Items) != len(s.Items) {
		t.Fatalf("gzip round trip lost items: %d vs %d", len(got.Items), len(s.Items))
	}
	// Plain content passes through.
	r, err = MaybeGzip(strings.NewReader("1 0\n2 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	got, err = ReadText(r, 0)
	if err != nil || len(got.Items) != 2 {
		t.Fatalf("plain passthrough broken: %v, %d items", err, len(got.Items))
	}
	// Tiny input is passed through untouched.
	if _, err := MaybeGzip(strings.NewReader("x")); err != nil {
		t.Fatal(err)
	}
	// Corrupt gzip header errors.
	if _, err := MaybeGzip(bytes.NewReader([]byte{0x1f, 0x8b, 0xff})); err == nil {
		t.Fatal("corrupt gzip accepted")
	}
}
