package dist

import (
	"math"
	"strings"
	"testing"

	"sigstream/internal/gen"
	"sigstream/internal/stream"
)

func TestZipfStreamIsLongTail(t *testing.T) {
	s := gen.ZipfStream(100000, 10000, 10, 1.1, 1)
	r := Analyze(s)
	if !r.LongTail {
		t.Fatalf("Zipf γ=1.1 not recognized as long-tailed: %+v", r)
	}
	if math.Abs(r.ZipfSkew-1.1) > 0.35 {
		t.Fatalf("fitted skew %.2f far from true 1.1", r.ZipfSkew)
	}
	if r.FitR2 < 0.8 {
		t.Fatalf("fit R² %.2f too low for a true Zipf sample", r.FitR2)
	}
	if r.Top1Share <= 0 || r.Top100Share <= r.Top10Share {
		t.Fatalf("share statistics inconsistent: %+v", r)
	}
}

func TestUniformStreamIsNotLongTail(t *testing.T) {
	s := gen.UniformStream(100000, 5000, 10, 2)
	r := Analyze(s)
	if r.LongTail {
		t.Fatalf("uniform stream misclassified as long-tailed: %+v", r)
	}
	if r.MaxOverMedian > 3 {
		t.Fatalf("uniform max/median %.1f implausible", r.MaxOverMedian)
	}
}

func TestPresetWorkloadsAreLongTail(t *testing.T) {
	for _, s := range []*stream.Stream{
		gen.CAIDALike(80000, 1),
		gen.NetworkLike(80000, 1),
		gen.SocialLike(80000, 1),
	} {
		r := Analyze(s)
		if !r.LongTail {
			t.Errorf("%s not recognized as long-tailed: skew %.2f max/median %.1f",
				s.Label, r.ZipfSkew, r.MaxOverMedian)
		}
	}
}

func TestAnalyzeEmptyAndTiny(t *testing.T) {
	r := Analyze(&stream.Stream{})
	if r.Arrivals != 0 || r.Distinct != 0 || r.LongTail {
		t.Fatalf("empty stream report wrong: %+v", r)
	}
	r = Analyze(&stream.Stream{Items: []stream.Item{1, 1, 2}})
	if r.Distinct != 2 || r.Arrivals != 3 {
		t.Fatalf("tiny stream report wrong: %+v", r)
	}
}

func TestFreqsCappedAndSorted(t *testing.T) {
	s := gen.ZipfStream(50000, 5000, 5, 1.0, 3)
	r := Analyze(s)
	if len(r.Freqs) > 1000 {
		t.Fatalf("freqs not capped: %d", len(r.Freqs))
	}
	for i := 1; i < len(r.Freqs); i++ {
		if r.Freqs[i] > r.Freqs[i-1] {
			t.Fatal("freqs not sorted descending")
		}
	}
}

func TestStringVerdicts(t *testing.T) {
	long := Analyze(gen.ZipfStream(50000, 5000, 5, 1.2, 4)).String()
	if !strings.Contains(long, "long-tailed — Long-tail Replacement") {
		t.Fatalf("positive verdict missing:\n%s", long)
	}
	flat := Analyze(gen.UniformStream(50000, 5000, 5, 4)).String()
	if !strings.Contains(flat, "NOT clearly long-tailed") {
		t.Fatalf("negative verdict missing:\n%s", flat)
	}
}

func TestFitZipfDegenerate(t *testing.T) {
	if g, r2 := fitZipf(nil); g != 0 || r2 != 0 {
		t.Fatal("nil input must yield zeros")
	}
	if g, _ := fitZipf([]uint64{5}); g != 0 {
		t.Fatal("single point must yield zero skew")
	}
	// Perfectly flat ranking → slope 0.
	if g, _ := fitZipf([]uint64{7, 7, 7, 7, 7, 7}); math.Abs(g) > 1e-9 {
		t.Fatalf("flat ranking skew %.4f, want 0", g)
	}
}
