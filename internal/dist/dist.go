// Package dist diagnoses a workload's frequency distribution. The paper's
// Long-tail Replacement section ends with a prescription (Section III-D,
// "Shortcoming"): before relying on the optimization, users should sample
// their dataset and check that item frequencies are long-tailed. This
// package implements that check — frequency ranking, a Zipf-skew fit, tail
// share statistics, and a go/no-go recommendation — and cmd/sigcheck wraps
// it for trace files.
package dist

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"sigstream/internal/stream"
)

// Report summarizes a stream's frequency distribution.
type Report struct {
	// Arrivals and Distinct describe the sample size.
	Arrivals int
	Distinct int
	// TopShare[k] is the fraction of arrivals contributed by the k most
	// frequent items, for k ∈ {1, 10, 100}.
	Top1Share   float64
	Top10Share  float64
	Top100Share float64
	// MaxOverMedian is f_max / f_median — a quick tail indicator.
	MaxOverMedian float64
	// ZipfSkew is the γ of the best least-squares fit of
	// log f_rank = c − γ·log rank over the top half of the ranking.
	ZipfSkew float64
	// FitR2 is the coefficient of determination of that fit.
	FitR2 float64
	// LongTail is the overall recommendation: true when Long-tail
	// Replacement's assumption looks satisfied.
	LongTail bool
	// Freqs is the frequency ranking (descending), capped at 1000 entries
	// for plotting.
	Freqs []uint64
}

// Analyze computes the Report for a stream.
func Analyze(s *stream.Stream) Report {
	counts := make(map[stream.Item]uint64, 1024)
	for _, it := range s.Items {
		counts[it]++
	}
	freqs := make([]uint64, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Slice(freqs, func(i, j int) bool { return freqs[i] > freqs[j] })

	r := Report{
		Arrivals: len(s.Items),
		Distinct: len(freqs),
	}
	if len(freqs) == 0 {
		return r
	}
	total := float64(len(s.Items))
	sumTop := func(k int) float64 {
		if k > len(freqs) {
			k = len(freqs)
		}
		var t uint64
		for _, f := range freqs[:k] {
			t += f
		}
		return float64(t) / total
	}
	r.Top1Share = sumTop(1)
	r.Top10Share = sumTop(10)
	r.Top100Share = sumTop(100)
	median := float64(freqs[len(freqs)/2])
	if median > 0 {
		r.MaxOverMedian = float64(freqs[0]) / median
	}
	r.ZipfSkew, r.FitR2 = fitZipf(freqs)

	// Recommendation: a clear head (top-100 carries a disproportionate
	// share) and a positive, well-fitting skew.
	headShare := r.Top100Share
	headFrac := math.Min(100, float64(len(freqs))) / float64(len(freqs))
	r.LongTail = headShare > 5*headFrac && r.ZipfSkew > 0.4 &&
		r.MaxOverMedian >= 10

	cap := len(freqs)
	if cap > 1000 {
		cap = 1000
	}
	r.Freqs = freqs[:cap]
	return r
}

// fitZipf least-squares fits log f = c − γ·log rank over the top half of
// the ranking (the tail of a finite sample flattens into counting noise).
func fitZipf(freqs []uint64) (gamma, r2 float64) {
	n := len(freqs) / 2
	if n < 3 {
		n = len(freqs)
	}
	if n < 2 {
		return 0, 0
	}
	var sx, sy, sxx, sxy, syy float64
	m := 0
	for i := 0; i < n; i++ {
		if freqs[i] == 0 {
			break
		}
		x := math.Log(float64(i + 1))
		y := math.Log(float64(freqs[i]))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		syy += y * y
		m++
	}
	if m < 2 {
		return 0, 0
	}
	fm := float64(m)
	den := fm*sxx - sx*sx
	if den == 0 {
		return 0, 0
	}
	slope := (fm*sxy - sx*sy) / den
	gamma = -slope
	// R² = 1 − SSR/SST via the regression identity.
	ssTot := syy - sy*sy/fm
	ssReg := slope * (sxy - sx*sy/fm)
	if ssTot > 0 {
		r2 = ssReg / ssTot
		if r2 < 0 {
			r2 = 0
		}
		if r2 > 1 {
			r2 = 1
		}
	}
	return gamma, r2
}

// String renders the report for terminal output.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "arrivals:         %d\n", r.Arrivals)
	fmt.Fprintf(&b, "distinct items:   %d\n", r.Distinct)
	fmt.Fprintf(&b, "top-1 share:      %.2f%%\n", r.Top1Share*100)
	fmt.Fprintf(&b, "top-10 share:     %.2f%%\n", r.Top10Share*100)
	fmt.Fprintf(&b, "top-100 share:    %.2f%%\n", r.Top100Share*100)
	fmt.Fprintf(&b, "max/median freq:  %.1f\n", r.MaxOverMedian)
	fmt.Fprintf(&b, "Zipf skew fit:    γ=%.2f (R²=%.2f)\n", r.ZipfSkew, r.FitR2)
	if r.LongTail {
		b.WriteString("verdict: long-tailed — Long-tail Replacement (the default) is appropriate\n")
	} else {
		b.WriteString("verdict: NOT clearly long-tailed — consider DisableLongTailReplacement (paper §III-D)\n")
	}
	return b.String()
}
