package coord

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sigstream"
	"sigstream/internal/client"
	"sigstream/internal/cluster"
	"sigstream/internal/fault"
	"sigstream/internal/server"
)

// fixture is a three-node cluster: real sigserver handlers behind
// httptest listeners, one coordinator in front.
type fixture struct {
	sites []string
	srvs  map[string]*httptest.Server
	coord *Server
}

func newFixture(t *testing.T, partitions, replicas int) *fixture {
	t.Helper()
	f := &fixture{srvs: make(map[string]*httptest.Server)}
	for i := 0; i < 3; i++ {
		srv := httptest.NewServer(server.New(server.Config{
			MemoryBytes:       128 << 10,
			TenantMemoryBytes: 32 << 10,
			Shards:            2,
			Weights:           sigstream.Weights{Alpha: 1, Beta: 1},
		}))
		t.Cleanup(srv.Close)
		f.sites = append(f.sites, srv.URL)
		f.srvs[srv.URL] = srv
	}
	c, err := New(Config{
		Sites:        f.sites,
		Partitions:   partitions,
		Replicas:     replicas,
		Interval:     50 * time.Millisecond,
		FetchTimeout: 2 * time.Second,
		Retry: cluster.RetryPolicy{
			Attempts:  3,
			BaseDelay: time.Millisecond,
			MaxDelay:  2 * time.Millisecond,
		},
		Breaker:      cluster.BreakerConfig{Trip: 100, Cooldown: time.Millisecond},
		ClosePeriods: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	f.coord = c
	return f
}

// load inserts keys key-0..key-n-1 into their partition namespaces on
// every replica site, exactly as a partition-aware producer would.
func (f *fixture) load(t *testing.T, n int) {
	t.Helper()
	ctx := context.Background()
	topo := f.coord.Topology()
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%03d", i)
		p := topo.PartitionKey(key)
		ns := cluster.PartitionNamespace(p)
		for _, site := range topo.ReplicaSites(p) {
			c := client.New(site, f.srvs[site].Client())
			if _, err := c.Tenant(ns).Insert(ctx, key); err != nil {
				t.Fatalf("insert %q on %s: %v", key, site, err)
			}
		}
	}
}

// get issues a request against the coordinator handler and decodes the
// JSON body into out (when non-nil), returning the status code.
func (f *fixture) get(t *testing.T, path string, out any) int {
	t.Helper()
	rec := httptest.NewRecorder()
	f.coord.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	if out != nil && rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("GET %s: decode: %v", path, err)
		}
	}
	return rec.Code
}

func TestCoordClusterRoundTrip(t *testing.T) {
	f := newFixture(t, 8, 2)
	f.load(t, 60)

	if code := f.get(t, "/readyz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz before first commit = %d, want 503", code)
	}
	if code := f.get(t, "/v1/topk", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("topk before first commit = %d, want 503", code)
	}

	rep := f.coord.GatherNow(context.Background())
	if !rep.Committed || rep.Epoch != 1 {
		t.Fatalf("first round: %+v", rep)
	}
	if code := f.get(t, "/readyz", nil); code != http.StatusOK {
		t.Fatalf("readyz after commit = %d, want 200", code)
	}

	var view struct {
		Epoch   int  `json:"epoch"`
		Stale   bool `json:"stale"`
		Entries []struct {
			Key         string `json:"key"`
			Frequency   uint64 `json:"frequency"`
			Persistency uint64 `json:"persistency"`
		} `json:"entries"`
	}
	if code := f.get(t, "/v1/topk?k=100", &view); code != http.StatusOK {
		t.Fatalf("topk = %d", code)
	}
	if view.Epoch != 1 || view.Stale {
		t.Fatalf("view provenance: %+v", view)
	}
	if len(view.Entries) != 60 {
		t.Fatalf("entries = %d, want 60", len(view.Entries))
	}
	for _, e := range view.Entries {
		// One insert per replica, one replica image merged per
		// partition: replication must not inflate counts.
		if e.Frequency != 1 || e.Persistency != 1 {
			t.Fatalf("entry %+v: replication double-counted", e)
		}
		if !strings.HasPrefix(e.Key, "key-") {
			t.Fatalf("entry key %q not resolved", e.Key)
		}
	}
}

func TestCoordClientMirrors(t *testing.T) {
	f := newFixture(t, 4, 2)
	f.load(t, 20)
	f.coord.GatherNow(context.Background())

	front := httptest.NewServer(f.coord)
	defer front.Close()
	c := client.New(front.URL, front.Client())
	ctx := context.Background()

	view, err := c.ClusterTopK(ctx, 50)
	if err != nil {
		t.Fatal(err)
	}
	if view.Epoch != 1 || len(view.Entries) != 20 || view.CommittedUnix == 0 {
		t.Fatalf("ClusterTopK: epoch=%d entries=%d committed=%d",
			view.Epoch, len(view.Entries), view.CommittedUnix)
	}
	st, err := c.ClusterStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Topology.Sites != 3 || st.Topology.Partitions != 4 ||
		st.Topology.Replicas != 2 || st.Topology.Quorum != 1 {
		t.Fatalf("topology: %+v", st.Topology)
	}
	if st.View == nil || st.View.Epoch != 1 {
		t.Fatalf("view info: %+v", st.View)
	}
	if st.Round == nil || !st.Round.Committed ||
		len(st.Round.Sites) != 3 || len(st.Round.Partitions) != 4 {
		t.Fatalf("round: %+v", st.Round)
	}
	for _, s := range st.Round.Sites {
		if s.Health != "healthy" || s.Breaker != "closed" {
			t.Fatalf("site %s: health=%s breaker=%s", s.Site, s.Health, s.Breaker)
		}
	}
	if err := c.Ready(ctx); err != nil {
		t.Fatalf("coordinator readyz via client: %v", err)
	}
}

func TestCoordServesThroughNodeDeath(t *testing.T) {
	f := newFixture(t, 8, 2)
	f.load(t, 60)
	if rep := f.coord.GatherNow(context.Background()); !rep.Committed {
		t.Fatalf("baseline round: %+v", rep)
	}

	dead := f.sites[1]
	f.srvs[dead].Close()

	rep := f.coord.GatherNow(context.Background())
	if !rep.Committed {
		t.Fatalf("round with one dead node did not commit: %+v", rep)
	}
	var view struct {
		Entries []struct {
			Frequency uint64 `json:"frequency"`
		} `json:"entries"`
	}
	if code := f.get(t, "/v1/topk?k=100", &view); code != http.StatusOK {
		t.Fatalf("topk with dead node = %d", code)
	}
	if len(view.Entries) != 60 {
		t.Fatalf("entries with dead node = %d, want 60 (lost a partition)", len(view.Entries))
	}
	var st struct {
		Round struct {
			Sites []struct {
				Site   string   `json:"site"`
				Health string   `json:"health"`
				Skips  []string `json:"skips"`
			} `json:"sites"`
		} `json:"round"`
	}
	f.get(t, "/v1/cluster/status", &st)
	found := false
	for _, s := range st.Round.Sites {
		if s.Site == dead {
			found = true
			if s.Health == "healthy" || len(s.Skips) == 0 {
				t.Fatalf("dead site reported %+v", s)
			}
		}
	}
	if !found {
		t.Fatalf("dead site missing from status: %+v", st.Round.Sites)
	}
}

func TestCoordTornCheckpointRetriedWithinRound(t *testing.T) {
	f := newFixture(t, 4, 2)
	f.load(t, 20)

	var torn atomic.Bool
	deactivate := fault.Activate(fault.CheckpointShip, func(int) error {
		if torn.CompareAndSwap(false, true) {
			return errors.New("injected torn checkpoint")
		}
		return nil
	})
	defer deactivate()

	rep := f.coord.GatherNow(context.Background())
	if !rep.Committed {
		t.Fatalf("round with torn checkpoint did not commit: %+v", rep)
	}
	if !torn.Load() {
		t.Fatal("fault hook never fired")
	}
	st := make(map[string]any)
	f.get(t, "/v1/stats", &st)
	if st["fetch_errors"].(float64) == 0 {
		t.Fatalf("torn shipment not counted as fetch error: %v", st["fetch_errors"])
	}
	var view struct {
		Entries []any `json:"entries"`
	}
	f.get(t, "/v1/topk?k=50", &view)
	if len(view.Entries) != 20 {
		t.Fatalf("entries after torn-checkpoint round = %d, want 20", len(view.Entries))
	}
}

func TestCoordCommitFaultKeepsPreviousView(t *testing.T) {
	f := newFixture(t, 4, 2)
	f.load(t, 20)
	if rep := f.coord.GatherNow(context.Background()); !rep.Committed {
		t.Fatalf("baseline round: %+v", rep)
	}

	deactivate := fault.Activate(fault.CoordCommit, func(int) error {
		return errors.New("injected commit failure")
	})
	rep := f.coord.GatherNow(context.Background())
	deactivate()
	if rep.Committed || !strings.Contains(rep.Reason, "commit aborted") {
		t.Fatalf("faulted round: %+v", rep)
	}
	var view struct {
		Epoch int  `json:"epoch"`
		Stale bool `json:"stale"`
	}
	if code := f.get(t, "/v1/topk", &view); code != http.StatusOK {
		t.Fatalf("topk during commit fault = %d", code)
	}
	if view.Epoch != 1 || !view.Stale {
		t.Fatalf("expected stale epoch-1 view, got %+v", view)
	}

	rep = f.coord.GatherNow(context.Background())
	if !rep.Committed || rep.Epoch != 2 {
		t.Fatalf("recovery round: %+v", rep)
	}
	f.get(t, "/v1/topk", &view)
	if view.Epoch != 2 || view.Stale {
		t.Fatalf("recovered view: %+v", view)
	}
}

func TestCoordGatherLoopStartClose(t *testing.T) {
	f := newFixture(t, 4, 2)
	f.load(t, 10)
	f.coord.Start()
	f.coord.Start() // idempotent

	deadline := time.Now().Add(5 * time.Second)
	for f.get(t, "/readyz", nil) != http.StatusOK {
		if time.Now().After(deadline) {
			t.Fatal("gather loop never committed a view")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := f.coord.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.coord.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestCoordCloseWithoutStart(t *testing.T) {
	f := newFixture(t, 2, 1)
	if err := f.coord.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCoordMetricsExposition(t *testing.T) {
	f := newFixture(t, 4, 2)
	f.load(t, 10)
	f.coord.GatherNow(context.Background())

	rec := httptest.NewRecorder()
	f.coord.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	for _, family := range []string{
		"sigstream_cluster_rounds_total 1",
		"sigstream_cluster_commits_total 1",
		"sigstream_cluster_stale_rounds_total 0",
		"sigstream_cluster_fetches_total",
		"sigstream_cluster_fetch_errors_total",
		"sigstream_cluster_sites 3",
		"sigstream_cluster_sites_healthy 3",
		"sigstream_cluster_partitions 4",
		"sigstream_cluster_partitions_quorum 4",
		"sigstream_cluster_replicas 2",
		"sigstream_cluster_view_epoch 1",
		"sigstream_cluster_view_age_seconds",
		"sigstream_cluster_site_skips_total{site=",
		"sigstream_cluster_breaker_state{site=",
		"sigstream_http_requests_total",
	} {
		if !strings.Contains(body, family) {
			t.Errorf("metrics exposition missing %q", family)
		}
	}
}

func TestCoordBadRequests(t *testing.T) {
	f := newFixture(t, 2, 1)
	f.load(t, 4)
	f.coord.GatherNow(context.Background())
	for _, q := range []string{"/v1/topk?k=0", "/v1/topk?k=-3", "/v1/topk?k=potato"} {
		if code := f.get(t, q, nil); code != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", q, code)
		}
	}
	if code := f.get(t, "/healthz", nil); code != http.StatusOK {
		t.Errorf("healthz = %d", code)
	}
}

func TestCoordRoutesTable(t *testing.T) {
	routes := Routes()
	if len(routes) != 6 {
		t.Fatalf("routes = %d, want 6", len(routes))
	}
	want := map[string]bool{
		"GET /v1/topk":           true,
		"GET /v1/cluster/status": true,
		"GET /v1/stats":          true,
		"GET /metrics":           true,
		"GET /healthz":           true,
		"GET /readyz":            true,
	}
	for _, r := range routes {
		if !want[r.Method+" "+r.Pattern] {
			t.Errorf("unexpected route %s %s", r.Method, r.Pattern)
		}
	}
}

func TestCoordConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("no sites accepted")
	}
	if _, err := New(Config{Sites: []string{"http://a", "http://a"}}); err == nil {
		t.Fatal("duplicate sites accepted")
	}
	// Replicas above the site count clamps instead of failing: a
	// three-node fleet asked for R=5 runs at R=3.
	s, err := New(Config{Sites: []string{"http://a", "http://b"}, Replicas: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Topology().Replicas(); got != 2 {
		t.Fatalf("clamped replicas = %d, want 2", got)
	}
}
