// Package coord is the cluster coordinator service behind cmd/sigcoord:
// it periodically gathers partition checkpoints from a fleet of sigserver
// nodes over HTTP (via internal/client against the tenant checkpoint
// route), merges them under the quorum rules of internal/cluster, and
// serves the committed cluster-wide view.
//
// Endpoints (all JSON):
//
//	GET /v1/topk              cluster-wide top-k with view provenance (503 before the first commit)
//	GET /v1/cluster/status    per-site and per-partition health, breaker states, skip reasons
//	GET /v1/stats             gather counters and the last round's skip report
//	GET /metrics              Prometheus text exposition (sigstream_cluster_* families)
//	GET /healthz              liveness: 200 while the process serves requests
//	GET /readyz               readiness: 200 once a view has been committed
//
// The design is failure-first: every remote call carries a deadline,
// transient failures retry under full-jitter backoff, corrupt answers do
// not retry, per-site circuit breakers stop burning timeouts on dead
// nodes, and quorum loss serves the last committed view with a staleness
// age instead of failing. A coordinator restart loses only staleness —
// the next committed round rebuilds the view from the sites, which own
// all durable state.
package coord

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"sigstream/internal/client"
	"sigstream/internal/cluster"
	"sigstream/internal/obs"
)

// Config shapes a coordinator. Sites is required; zero values elsewhere
// select the defaults.
type Config struct {
	// Sites are the sigserver base URLs (e.g. "http://10.0.0.1:8080").
	Sites []string
	// Partitions is the partition count P (default 16).
	Partitions int
	// Replicas is the replication factor R (default 2, capped at the
	// site count).
	Replicas int
	// Interval is the gather cadence (default 2s).
	Interval time.Duration
	// FetchTimeout is the deadline on every remote call (default 2s).
	FetchTimeout time.Duration
	// Retry bounds the per-fetch backoff for transient failures.
	Retry cluster.RetryPolicy
	// Breaker bounds each site's circuit breaker.
	Breaker cluster.BreakerConfig
	// ResolveNames is the number of top items per partition whose keys
	// are harvested for display (default 64, negative disables).
	ResolveNames int
	// ClosePeriods makes the coordinator drive period boundaries: before
	// each gather it closes the current period of every partition
	// namespace on every replica, so one round equals one period
	// cluster-wide. Leave false when producers own the period clock.
	ClosePeriods bool
	// Logger receives round logs; nil discards them.
	Logger *slog.Logger
	// HTTPClient overrides the transport to the sites (tests); nil uses
	// a client bounded by FetchTimeout.
	HTTPClient *http.Client
}

// Route is one coordinator endpoint.
type Route struct {
	// Method is the HTTP method the route accepts.
	Method string
	// Pattern is the ServeMux pattern.
	Pattern string
}

// routeTable is the canonical route list; New panics if any row has no
// registered handler, so the table cannot drift from the mux.
var routeTable = []Route{
	{Method: http.MethodGet, Pattern: "/v1/topk"},
	{Method: http.MethodGet, Pattern: "/v1/cluster/status"},
	{Method: http.MethodGet, Pattern: "/v1/stats"},
	{Method: http.MethodGet, Pattern: "/metrics"},
	{Method: http.MethodGet, Pattern: "/healthz"},
	{Method: http.MethodGet, Pattern: "/readyz"},
}

// Routes returns the coordinator's route table, sorted by pattern then
// method.
func Routes() []Route {
	out := make([]Route, len(routeTable))
	copy(out, routeTable)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pattern != out[j].Pattern {
			return out[i].Pattern < out[j].Pattern
		}
		return out[i].Method < out[j].Method
	})
	return out
}

// Server is an http.Handler running the gather loop and serving the
// cluster view.
type Server struct {
	cfg      Config
	log      *slog.Logger
	topo     *cluster.Topology
	gatherer *cluster.Gatherer
	tenants  map[string]*client.Client // site -> API client (period control)
	mux      *http.ServeMux
	reg      *obs.Registry
	httpm    *obs.HTTPMetrics

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	startOnce sync.Once
	stopOnce  sync.Once
}

// New builds a coordinator. It validates the topology and the per-site
// clients but performs no network I/O; call Start to begin gathering.
func New(cfg Config) (*Server, error) {
	if cfg.Partitions <= 0 {
		cfg.Partitions = 16
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.Replicas > len(cfg.Sites) {
		cfg.Replicas = len(cfg.Sites)
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.FetchTimeout <= 0 {
		cfg.FetchTimeout = 2 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(discardHandler{})
	}
	topo, err := cluster.NewTopology(cfg.Sites, cfg.Partitions, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	httpc := cfg.HTTPClient
	if httpc == nil {
		httpc = &http.Client{Timeout: cfg.FetchTimeout}
	}
	clients := make(map[string]cluster.SiteClient, len(cfg.Sites))
	tenants := make(map[string]*client.Client, len(cfg.Sites))
	for _, site := range topo.Sites() {
		c := client.New(site, httpc)
		tenants[site] = c
		clients[site] = httpSite{c: c}
	}
	gatherer, err := cluster.NewGatherer(cluster.GatherConfig{
		Topology:     topo,
		Clients:      clients,
		Retry:        cfg.Retry,
		Breaker:      cfg.Breaker,
		FetchTimeout: cfg.FetchTimeout,
		ResolveNames: cfg.ResolveNames,
	})
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		log:      cfg.Logger,
		topo:     topo,
		gatherer: gatherer,
		tenants:  tenants,
		mux:      http.NewServeMux(),
		reg:      obs.NewRegistry(),
		httpm:    obs.NewHTTPMetrics(),
		ctx:      ctx,
		cancel:   cancel,
		done:     make(chan struct{}),
	}
	s.reg.Register(obs.CollectorFunc(s.collectCluster))
	s.reg.Register(s.httpm)
	s.registerRoutes()
	return s, nil
}

// discardHandler drops all log records (slog.DiscardHandler arrives in a
// later Go release than this module targets).
type discardHandler struct{}

// Enabled implements slog.Handler.
func (discardHandler) Enabled(context.Context, slog.Level) bool { return false }

// Handle implements slog.Handler.
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }

// WithAttrs implements slog.Handler.
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler { return d }

// WithGroup implements slog.Handler.
func (d discardHandler) WithGroup(string) slog.Handler { return d }

// registerRoutes installs every routeTable row on the mux, wrapped in
// metrics middleware keyed by pattern.
func (s *Server) registerRoutes() {
	impl := map[string]http.HandlerFunc{
		"GET /v1/topk":           s.handleTopK,
		"GET /v1/cluster/status": s.handleStatus,
		"GET /v1/stats":          s.handleStats,
		"GET /metrics":           s.reg.ServeHTTP,
		"GET /healthz":           s.handleHealthz,
		"GET /readyz":            s.handleReadyz,
	}
	for _, rt := range routeTable {
		key := rt.Method + " " + rt.Pattern
		h, ok := impl[key]
		if !ok {
			panic("coord: route " + key + " has no handler")
		}
		s.mux.Handle(key, s.httpm.Wrap(rt.Pattern, h))
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Topology returns the coordinator's partition map.
func (s *Server) Topology() *cluster.Topology { return s.topo }

// TopKView returns the committed cluster view's top-k entries with its
// provenance; ok is false before the first committed round.
func (s *Server) TopKView(k int) ([]cluster.ViewEntry, cluster.ViewInfo, bool) {
	return s.gatherer.TopK(k)
}

// Start launches the gather loop. It is idempotent.
func (s *Server) Start() {
	s.startOnce.Do(func() {
		go s.loop()
	})
}

// Close stops the gather loop, cancelling any in-flight round, and waits
// for it to exit. Idempotent; safe to call without Start.
func (s *Server) Close() error {
	s.stopOnce.Do(func() {
		s.cancel()
		s.startOnce.Do(func() { close(s.done) }) // never started: nothing to wait for
	})
	<-s.done
	return nil
}

// loop runs gather rounds at the configured cadence until Close.
func (s *Server) loop() {
	defer close(s.done)
	ticker := time.NewTicker(s.cfg.Interval)
	defer ticker.Stop()
	// An immediate first round, so a fresh coordinator serves a view
	// after one interval-free gather rather than one interval late.
	s.runRound()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-ticker.C:
			s.runRound()
		}
	}
}

// runRound executes one gather round with optional period control.
func (s *Server) runRound() {
	if s.ctx.Err() != nil {
		return
	}
	if s.cfg.ClosePeriods {
		s.closePeriods()
	}
	rep := s.gatherer.Round(s.ctx)
	if rep.Committed {
		s.log.Info("gather round committed",
			"epoch", rep.Epoch,
			"healthy_sites", rep.HealthySites(),
			"quorum_partitions", rep.QuorumPartitions())
	} else {
		s.log.Warn("gather round did not commit",
			"reason", rep.Reason,
			"healthy_sites", rep.HealthySites(),
			"quorum_partitions", rep.QuorumPartitions())
	}
}

// closePeriods closes the current period of every partition namespace on
// every replica site, best-effort: a replica that misses a boundary while
// dead diverges anyway, and the freshest-replica merge rule absorbs it.
func (s *Server) closePeriods() {
	for p := 0; p < s.topo.Partitions(); p++ {
		ns := cluster.PartitionNamespace(p)
		for _, site := range s.topo.ReplicaSites(p) {
			ctx, cancel := context.WithTimeout(s.ctx, s.cfg.FetchTimeout)
			_, err := s.tenants[site].Tenant(ns).EndPeriod(ctx)
			cancel()
			if err != nil && s.ctx.Err() == nil {
				s.log.Warn("period close failed", "site", site, "namespace", ns, "error", err)
			}
		}
	}
}

// GatherNow runs one synchronous gather round, for tests and operator
// tooling. It is safe alongside the loop (rounds serialize).
func (s *Server) GatherNow(ctx context.Context) cluster.RoundReport {
	if s.cfg.ClosePeriods {
		s.closePeriods()
	}
	return s.gatherer.Round(ctx)
}

// httpSite adapts a client.Client to cluster.SiteClient.
type httpSite struct {
	c *client.Client
}

// FetchCheckpoint downloads one partition checkpoint, mapping the
// server's 404 for an unknown namespace to ErrNoPartition.
func (h httpSite) FetchCheckpoint(ctx context.Context, ns string) ([]byte, error) {
	img, err := h.c.Tenant(ns).Checkpoint(ctx)
	var apiErr *client.APIError
	if errors.As(err, &apiErr) && apiErr.Status == http.StatusNotFound {
		return nil, cluster.ErrNoPartition
	}
	return img, err
}

// FetchNames resolves display keys from the namespace's top list.
func (h httpSite) FetchNames(ctx context.Context, ns string, k int) (map[uint64]string, error) {
	entries, err := h.c.Tenant(ns).TopK(ctx, k)
	if err != nil {
		return nil, err
	}
	m := make(map[uint64]string, len(entries))
	for _, e := range entries {
		if e.Key != "" {
			m[e.Item] = e.Key
		}
	}
	return m, nil
}

// Ready probes the site's readiness endpoint.
func (h httpSite) Ready(ctx context.Context) error {
	return h.c.Ready(ctx)
}

// topKResponse is the /v1/topk payload.
type topKResponse struct {
	Epoch         int                 `json:"epoch"`
	CommittedUnix int64               `json:"committed_unix"`
	AgeSeconds    float64             `json:"age_seconds"`
	Stale         bool                `json:"stale"`
	Entries       []cluster.ViewEntry `json:"entries"`
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	k := 10
	if v := r.URL.Query().Get("k"); v != "" {
		if _, err := fmt.Sscanf(v, "%d", &k); err != nil || k < 1 {
			httpError(w, http.StatusBadRequest, "bad_request", "k must be a positive integer")
			return
		}
	}
	entries, info, ok := s.gatherer.TopK(k)
	if !ok {
		httpError(w, http.StatusServiceUnavailable, "no_view",
			"no cluster view committed yet")
		return
	}
	if entries == nil {
		entries = []cluster.ViewEntry{}
	}
	writeJSON(w, topKResponse{
		Epoch:         info.Epoch,
		CommittedUnix: info.Committed.Unix(),
		AgeSeconds:    info.AgeSeconds,
		Stale:         info.Stale,
		Entries:       entries,
	})
}

// topologyInfo summarizes the partition map in status payloads.
type topologyInfo struct {
	Sites      int `json:"sites"`
	Partitions int `json:"partitions"`
	Replicas   int `json:"replicas"`
	Quorum     int `json:"quorum"`
}

// statusResponse is the /v1/cluster/status payload.
type statusResponse struct {
	Topology topologyInfo         `json:"topology"`
	View     *cluster.ViewInfo    `json:"view"`
	Round    *cluster.RoundReport `json:"round"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	resp := statusResponse{Topology: topologyInfo{
		Sites:      len(s.topo.Sites()),
		Partitions: s.topo.Partitions(),
		Replicas:   s.topo.Replicas(),
		Quorum:     s.topo.Quorum(),
	}}
	if info, ok := s.gatherer.ViewInfo(); ok {
		resp.View = &info
	}
	if rep, ok := s.gatherer.LastRound(); ok {
		resp.Round = &rep
	}
	writeJSON(w, resp)
}

// statsResponse is the /v1/stats payload: the gather counters plus the
// last round's skip report, so degraded state is observable between
// rounds, not just at gather time.
type statsResponse struct {
	Rounds           uint64               `json:"rounds"`
	Commits          uint64               `json:"commits"`
	StaleRounds      uint64               `json:"stale_rounds"`
	Fetches          uint64               `json:"fetches"`
	FetchErrors      uint64               `json:"fetch_errors"`
	SiteSkips        map[string]uint64    `json:"site_skips"`
	Breakers         map[string]string    `json:"breakers"`
	ViewEpoch        int                  `json:"view_epoch"`
	ViewAgeSeconds   float64              `json:"view_age_seconds"`
	Sites            int                  `json:"sites"`
	SitesHealthy     int                  `json:"sites_healthy"`
	Partitions       int                  `json:"partitions"`
	PartitionsQuorum int                  `json:"partitions_quorum"`
	LastRound        *cluster.RoundReport `json:"last_round,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.gatherer.Stats()
	resp := statsResponse{
		Rounds:           st.Rounds,
		Commits:          st.Commits,
		StaleRounds:      st.StaleRounds,
		Fetches:          st.Fetches,
		FetchErrors:      st.FetchErrors,
		SiteSkips:        st.SiteSkips,
		Breakers:         make(map[string]string, len(st.BreakerState)),
		ViewEpoch:        st.ViewEpoch,
		ViewAgeSeconds:   st.ViewAgeSeconds,
		Sites:            st.Sites,
		SitesHealthy:     st.SitesHealthy,
		Partitions:       st.Partitions,
		PartitionsQuorum: st.PartitionsQuorum,
	}
	for site, state := range st.BreakerState {
		resp.Breakers[site] = state.String()
	}
	if rep, ok := s.gatherer.LastRound(); ok {
		resp.LastRound = &rep
	}
	writeJSON(w, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write([]byte(`{"status":"ok"}`))
}

// handleReadyz reports 200 once a cluster view has been committed: a
// coordinator that has never gathered successfully should not receive
// traffic from a load balancer, but one serving a stale view should.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.gatherer.ViewInfo(); !ok {
		httpError(w, http.StatusServiceUnavailable, "no_view",
			"no cluster view committed yet")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write([]byte(`{"status":"ready"}`))
}

// collectCluster emits the sigstream_cluster_* metric families.
func (s *Server) collectCluster(w *obs.Writer) {
	st := s.gatherer.Stats()
	w.Counter("sigstream_cluster_rounds_total",
		"Gather rounds run.", float64(st.Rounds))
	w.Counter("sigstream_cluster_commits_total",
		"Gather rounds that committed a new cluster view.", float64(st.Commits))
	w.Counter("sigstream_cluster_stale_rounds_total",
		"Gather rounds that failed to commit (the previous view kept serving).",
		float64(st.StaleRounds))
	w.Counter("sigstream_cluster_fetches_total",
		"Checkpoint fetch attempts, retries included.", float64(st.Fetches))
	w.Counter("sigstream_cluster_fetch_errors_total",
		"Checkpoint fetch attempts that failed.", float64(st.FetchErrors))
	w.Gauge("sigstream_cluster_sites",
		"Member sites in the topology.", float64(st.Sites))
	w.Gauge("sigstream_cluster_sites_healthy",
		"Sites classified healthy in the last round.", float64(st.SitesHealthy))
	w.Gauge("sigstream_cluster_partitions",
		"Partitions in the topology.", float64(st.Partitions))
	w.Gauge("sigstream_cluster_partitions_quorum",
		"Partitions that reached read quorum in the last round.",
		float64(st.PartitionsQuorum))
	w.Gauge("sigstream_cluster_replicas",
		"Replication factor R.", float64(s.topo.Replicas()))
	w.Gauge("sigstream_cluster_view_epoch",
		"Epoch of the committed cluster view (0 before the first commit).",
		float64(st.ViewEpoch))
	w.Gauge("sigstream_cluster_view_age_seconds",
		"Age of the committed cluster view.", st.ViewAgeSeconds)
	sites := make([]string, 0, len(st.BreakerState))
	for site := range st.BreakerState {
		sites = append(sites, site)
	}
	sort.Strings(sites)
	for _, site := range sites {
		lbl := obs.Label{Name: "site", Value: site}
		w.Counter("sigstream_cluster_site_skips_total",
			"Partition fetches skipped per site (breaker open, site down, corrupt).",
			float64(st.SiteSkips[site]), lbl)
		w.Gauge("sigstream_cluster_breaker_state",
			"Circuit-breaker position per site: 0 closed, 1 open, 2 half-open.",
			float64(st.BreakerState[site]), lbl)
	}
}

// writeJSON writes v as a JSON 200.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// httpError writes the service's JSON error envelope, matching the shape
// internal/client's typed errors parse.
func httpError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"code": code, "message": msg})
}
