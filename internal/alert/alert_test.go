package alert

import (
	"strings"
	"testing"

	"sigstream/internal/stream"
)

func entry(item stream.Item, sig float64, p uint64) stream.Entry {
	return stream.Entry{Item: item, Persistency: p, Significance: sig}
}

func TestRaiseOnceAndClear(t *testing.T) {
	w := NewWatcher(Rule{Raise: 100, Clear: 50})
	// Scan 0: item crosses.
	ev := w.Scan([]stream.Entry{entry(1, 150, 3)})
	if len(ev) != 1 || ev[0].Kind != Raised || ev[0].Entry.Item != 1 {
		t.Fatalf("expected one raise, got %+v", ev)
	}
	if w.Active() != 1 {
		t.Fatalf("active = %d", w.Active())
	}
	// Scan 1: still high — no duplicate raise.
	if ev := w.Scan([]stream.Entry{entry(1, 160, 4)}); len(ev) != 0 {
		t.Fatalf("duplicate events: %+v", ev)
	}
	// Scan 2: inside the hysteresis band — stays active.
	if ev := w.Scan([]stream.Entry{entry(1, 70, 4)}); len(ev) != 0 {
		t.Fatalf("hysteresis violated: %+v", ev)
	}
	// Scan 3: below Clear — clears.
	ev = w.Scan([]stream.Entry{entry(1, 10, 4)})
	if len(ev) != 1 || ev[0].Kind != Cleared {
		t.Fatalf("expected clear, got %+v", ev)
	}
	if w.Active() != 0 {
		t.Fatal("still active after clear")
	}
}

func TestClearWhenItemVanishes(t *testing.T) {
	w := NewWatcher(Rule{Raise: 100})
	w.Scan([]stream.Entry{entry(1, 150, 1)})
	ev := w.Scan(nil) // item evicted from the ranking entirely
	if len(ev) != 1 || ev[0].Kind != Cleared {
		t.Fatalf("vanished item not cleared: %+v", ev)
	}
	// The cleared event carries the last known snapshot.
	if ev[0].Entry.Significance != 150 {
		t.Fatalf("cleared event lost the last snapshot: %+v", ev[0])
	}
}

func TestMinPersistencyGatesBursts(t *testing.T) {
	w := NewWatcher(Rule{Raise: 100, MinPersistency: 3})
	// A one-period burst with huge significance must NOT raise.
	if ev := w.Scan([]stream.Entry{entry(1, 9999, 1)}); len(ev) != 0 {
		t.Fatalf("burst raised despite MinPersistency: %+v", ev)
	}
	// Once persistent enough, it raises.
	ev := w.Scan([]stream.Entry{entry(1, 9999, 3)})
	if len(ev) != 1 || ev[0].Kind != Raised {
		t.Fatalf("persistent item did not raise: %+v", ev)
	}
}

func TestDefaultClear(t *testing.T) {
	w := NewWatcher(Rule{Raise: 100})
	w.Scan([]stream.Entry{entry(1, 120, 1)})
	// 60 ≥ default clear 50 → stays.
	if ev := w.Scan([]stream.Entry{entry(1, 60, 1)}); len(ev) != 0 {
		t.Fatalf("default hysteresis wrong: %+v", ev)
	}
	if ev := w.Scan([]stream.Entry{entry(1, 40, 1)}); len(ev) != 1 {
		t.Fatalf("default clear threshold wrong: %+v", ev)
	}
}

func TestMultipleItemsIndependent(t *testing.T) {
	w := NewWatcher(Rule{Raise: 100, Clear: 50})
	ev := w.Scan([]stream.Entry{entry(1, 150, 1), entry(2, 30, 1), entry(3, 200, 1)})
	if len(ev) != 2 {
		t.Fatalf("expected 2 raises, got %+v", ev)
	}
	ev = w.Scan([]stream.Entry{entry(1, 150, 1), entry(2, 300, 1)})
	// Item 2 raises, item 3 clears (vanished).
	var raised, cleared int
	for _, e := range ev {
		switch e.Kind {
		case Raised:
			raised++
		case Cleared:
			cleared++
		}
	}
	if raised != 1 || cleared != 1 {
		t.Fatalf("got %d raises / %d clears, want 1/1: %+v", raised, cleared, ev)
	}
	if len(w.ActiveItems()) != 2 {
		t.Fatalf("active items = %d, want 2", len(w.ActiveItems()))
	}
}

func TestEventString(t *testing.T) {
	e := Event{Kind: Raised, Scan: 4, Entry: entry(9, 123.4, 7)}
	s := e.String()
	for _, want := range []string{"RAISE", "item=9", "s=123.4", "scan 4"} {
		if !strings.Contains(s, want) {
			t.Fatalf("event string missing %q: %s", want, s)
		}
	}
	if !strings.Contains((Event{Kind: Cleared}).String(), "CLEAR") {
		t.Fatal("clear string wrong")
	}
}

func TestScanCounter(t *testing.T) {
	w := NewWatcher(Rule{Raise: 1})
	w.Scan(nil)
	w.Scan(nil)
	if w.Scans() != 2 {
		t.Fatalf("scans = %d, want 2", w.Scans())
	}
}
