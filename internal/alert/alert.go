// Package alert turns significance rankings into operational events: an
// item whose significance crosses a threshold raises an alert; it clears
// when it falls below a lower bound (hysteresis, so borderline items don't
// flap). This is the acting half of the paper's Use Case 1 — detecting
// DDoS sources is only useful if something fires.
package alert

import (
	"fmt"

	"sigstream/internal/stream"
)

// Rule configures when alerts raise and clear.
type Rule struct {
	// Raise is the significance at or above which an item alerts.
	Raise float64
	// Clear is the significance below which an active alert clears. Must
	// be ≤ Raise; the gap is the hysteresis band. Zero defaults to Raise/2.
	Clear float64
	// MinPersistency additionally requires an item to have appeared in at
	// least this many periods before it can raise — the paper's point that
	// bursts alone should not trigger (0 disables).
	MinPersistency uint64
}

// Kind distinguishes event types.
type Kind int

const (
	// Raised fires when an item first crosses the Raise threshold.
	Raised Kind = iota
	// Cleared fires when a previously raised item falls below Clear (or
	// leaves the scanned ranking entirely).
	Cleared
)

func (k Kind) String() string {
	if k == Cleared {
		return "CLEAR"
	}
	return "RAISE"
}

// Event is one alert transition.
type Event struct {
	Kind  Kind
	Scan  int // scan (period) index the transition was observed in
	Entry stream.Entry
}

// String renders the event for logs.
func (e Event) String() string {
	return fmt.Sprintf("%s item=%d f=%d p=%d s=%.1f (scan %d)",
		e.Kind, e.Entry.Item, e.Entry.Frequency, e.Entry.Persistency,
		e.Entry.Significance, e.Scan)
}

// Watcher tracks alert state across scans. Not safe for concurrent use.
type Watcher struct {
	rule   Rule
	active map[stream.Item]stream.Entry
	scans  int
}

// NewWatcher creates a Watcher for rule.
func NewWatcher(rule Rule) *Watcher {
	if rule.Clear <= 0 || rule.Clear > rule.Raise {
		rule.Clear = rule.Raise / 2
	}
	return &Watcher{rule: rule, active: map[stream.Item]stream.Entry{}}
}

// Active returns the number of currently raised items.
func (w *Watcher) Active() int { return len(w.active) }

// Scans returns the number of Scan calls so far.
func (w *Watcher) Scans() int { return w.scans }

// Scan evaluates a ranking snapshot (typically tracker.TopK(k) after each
// period) and returns the transitions since the previous scan, raises
// first. Items absent from the snapshot are treated as significance 0.
func (w *Watcher) Scan(entries []stream.Entry) []Event {
	scan := w.scans
	w.scans++

	present := make(map[stream.Item]stream.Entry, len(entries))
	for _, e := range entries {
		present[e.Item] = e
	}
	var events []Event
	for _, e := range entries {
		_, isActive := w.active[e.Item]
		if isActive {
			continue
		}
		if e.Significance >= w.rule.Raise &&
			e.Persistency >= w.rule.MinPersistency {
			w.active[e.Item] = e
			events = append(events, Event{Kind: Raised, Scan: scan, Entry: e})
		}
	}
	for item, last := range w.active {
		cur, ok := present[item]
		if ok && cur.Significance >= w.rule.Clear {
			w.active[item] = cur // refresh the stored snapshot
			continue
		}
		delete(w.active, item)
		cleared := last
		if ok {
			cleared = cur
		}
		events = append(events, Event{Kind: Cleared, Scan: scan, Entry: cleared})
	}
	return events
}

// ActiveItems returns the currently raised entries (latest snapshots),
// unordered.
func (w *Watcher) ActiveItems() []stream.Entry {
	es := make([]stream.Entry, 0, len(w.active))
	for _, e := range w.active {
		es = append(es, e)
	}
	return es
}
