// Package wal is an append-only write-ahead log of accepted tracker
// mutations: insert batches, period boundaries and state restores. The
// serving layer appends a record before acknowledging the mutation, so a
// crash — even kill -9 — loses nothing a client was told succeeded:
// recovery replays the log tail over the newest snapshot and lands on
// bit-identical state.
//
// Durability contract: Append returns only after the record is on disk
// and fsynced. With Options.SyncInterval ≤ 0 every append fsyncs inline;
// with a positive interval appends are group-committed — concurrent
// appends coalesce into one fsync taken at most SyncInterval after the
// first waiter arrived, so a burst of producers pays one disk flush, and
// no append waits longer than roughly the interval. Either way an
// acknowledged record survives; a crash between fsyncs can only drop
// records whose Append had not yet returned.
//
// The log is a directory of segment files (wal-<seq>.swal, zero-padded
// hexadecimal so lexical order is age order), each a concatenation of
// CRC32-trailed frames (format in record.go). Rotate seals the active
// segment and opens the next; the returned boundary is the snapshot cut:
// a snapshot taken immediately after a rotation covers exactly the
// records in segments below the cut, so TruncateBefore(cut) bounds disk
// without losing anything the snapshot does not already hold. Replay
// walks segments at or above a cut in order and stops at the first
// invalid frame — the torn, never-acknowledged tail of a crash — which
// Open also trims so later appends land on a valid frame boundary.
package wal

import (
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sigstream/internal/fault"
)

const (
	segPrefix = "wal-"
	segSuffix = ".swal"

	// DefaultSegmentBytes is the rotation threshold when
	// Options.SegmentBytes is zero.
	DefaultSegmentBytes = 8 << 20
)

// ErrClosed reports an operation against a closed log.
var ErrClosed = errors.New("wal: log closed")

// Options tunes a Log.
type Options struct {
	// Dir is the log directory (created if missing).
	Dir string
	// SyncInterval is the group-commit batching window: ≤ 0 fsyncs every
	// append inline; positive coalesces appends into one fsync taken at
	// most this long after the first waiter arrived.
	SyncInterval time.Duration
	// SegmentBytes rotates the active segment once it would exceed this
	// size (default DefaultSegmentBytes). A single oversized record still
	// lands whole — segments bound typical size, they are not a record
	// limit.
	SegmentBytes int64
	// Logger receives torn-tail trims and truncation failures (default
	// slog.Default()).
	Logger *slog.Logger
}

// Stats is a point-in-time snapshot of the log's counters, for /v1/stats
// and /metrics exposition.
type Stats struct {
	// Appends counts acknowledged (durable) record appends.
	Appends uint64
	// AppendedBytes counts frame bytes written by acknowledged appends.
	AppendedBytes uint64
	// Syncs counts fsyncs taken; under group commit this is the measure
	// of how well appends coalesce (Appends/Syncs is the batch factor).
	Syncs uint64
	// Rotations counts sealed segments.
	Rotations uint64
	// Truncations counts segment files deleted by TruncateBefore.
	Truncations uint64
	// Segments is the number of segment files on disk, active included.
	Segments int
	// ActiveSegment is the sequence number of the segment appends land in.
	ActiveSegment uint64
	// DiskBytes is the total size of all segment files on disk.
	DiskBytes int64
}

// commit is one group-commit batch: every append since the previous fsync
// waits on done and reads err after it closes.
type commit struct {
	done chan struct{}
	err  error
}

// Log is an append-only segmented record log. All methods are safe for
// concurrent use.
type Log struct {
	dir      string
	interval time.Duration
	segBytes int64
	logger   *slog.Logger

	// mu guards the active file, segment bookkeeping and the pending
	// group-commit batch. No channel operation happens while it is held:
	// waiters block on their commit after releasing it, and resolved
	// commits are closed by the holder after unlocking.
	mu      sync.Mutex
	f       *os.File
	seg     uint64 // active segment sequence
	size    int64  // active segment size
	pending *commit
	closed  bool

	kick chan struct{} // wakes the group-commit goroutine; buffered(1)
	stop chan struct{}
	done chan struct{}

	appends, appendedBytes        atomic.Uint64
	syncs, rotations, truncations atomic.Uint64
	segCount                      atomic.Int64
	diskBytes                     atomic.Int64
}

// segName renders the segment file name for a sequence number.
func segName(seq uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, seq, segSuffix)
}

// parseSeg extracts the sequence number from a segment file name,
// reporting false for names that are not segment files.
func parseSeg(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	seq, err := strconv.ParseUint(name[len(segPrefix):len(name)-len(segSuffix)], 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// listSegments returns the segment sequence numbers in dir, ascending.
// A missing directory lists empty.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := parseSeg(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// Open opens (or creates) the log at opts.Dir and resumes appending to
// the newest segment. A torn tail — the half-written frame a crash
// mid-append leaves behind — is trimmed with a logged reason so the next
// append lands on a valid frame boundary; nothing acknowledged is ever
// behind a tear, because acknowledgement required the fsync to finish.
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, errors.New("wal: no directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	segBytes := opts.SegmentBytes
	if segBytes <= 0 {
		segBytes = DefaultSegmentBytes
	}
	l := &Log{
		dir:      opts.Dir,
		interval: opts.SyncInterval,
		segBytes: segBytes,
		logger:   logger,
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	seqs, err := listSegments(opts.Dir)
	if err != nil {
		return nil, err
	}
	for _, seq := range seqs {
		if info, err := os.Stat(filepath.Join(opts.Dir, segName(seq))); err == nil {
			l.diskBytes.Add(info.Size())
		}
	}
	l.segCount.Store(int64(len(seqs)))
	if len(seqs) == 0 {
		if err := l.createSegment(0); err != nil {
			return nil, err
		}
	} else {
		l.seg = seqs[len(seqs)-1]
		if err := l.openActive(); err != nil {
			return nil, err
		}
	}
	if l.interval > 0 {
		go l.run()
	} else {
		close(l.done)
	}
	return l, nil
}

// createSegment creates and opens segment seq as the active file and
// fsyncs the directory so the file's existence survives power loss.
func (l *Log) createSegment(seq uint64) error {
	path := filepath.Join(l.dir, segName(seq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	syncDir(l.dir)
	l.f, l.seg, l.size = f, seq, 0
	l.segCount.Add(1)
	return nil
}

// openActive opens the newest existing segment for appending, trimming a
// torn tail first.
func (l *Log) openActive() error {
	path := filepath.Join(l.dir, segName(l.seg))
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	valid, scanErr := Scan(data, nil)
	if valid < len(data) {
		l.logger.Warn("wal: trimming torn tail",
			"segment", segName(l.seg), "valid_bytes", valid,
			"torn_bytes", len(data)-valid, "reason", scanErr)
		if err := os.Truncate(path, int64(valid)); err != nil {
			return fmt.Errorf("wal: trim torn tail: %w", err)
		}
		l.diskBytes.Add(int64(valid - len(data)))
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.f, l.size = f, int64(valid)
	return nil
}

// Append writes one record payload and returns once it is durable. Under
// group commit the call blocks until the batch's shared fsync completes —
// at most roughly SyncInterval plus the flush itself. An error means the
// record is NOT durable and the caller must not acknowledge the mutation;
// the log itself stays usable (a torn partial write is rolled back so the
// next append lands on a frame boundary).
func (l *Log) Append(payload []byte) error {
	frame := encodeFrame(payload)
	var sealed *commit
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.size > 0 && l.size+int64(len(frame)) > l.segBytes {
		var err error
		sealed, err = l.rotateLocked()
		if err != nil {
			l.mu.Unlock()
			release(sealed)
			return err
		}
	}
	if err := l.writeLocked(frame); err != nil {
		l.mu.Unlock()
		release(sealed)
		return err
	}
	if l.interval <= 0 {
		err := l.syncLocked()
		l.mu.Unlock()
		release(sealed)
		if err != nil {
			return err
		}
		l.appends.Add(1)
		l.appendedBytes.Add(uint64(len(frame)))
		return nil
	}
	c := l.pending
	if c == nil {
		c = &commit{done: make(chan struct{})}
		l.pending = c
	}
	l.mu.Unlock()
	release(sealed)
	select {
	case l.kick <- struct{}{}:
	default:
	}
	<-c.done
	if c.err != nil {
		return c.err
	}
	l.appends.Add(1)
	l.appendedBytes.Add(uint64(len(frame)))
	return nil
}

// release closes a resolved group-commit batch, waking its waiters. Called
// only with mu released.
func release(c *commit) {
	if c != nil {
		close(c.done)
	}
}

// writeLocked appends one frame to the active segment, or — under an
// injected append fault — tears it: half the frame lands and the tear is
// rolled back with Truncate so the next append stays on a valid frame
// boundary, exactly the on-disk state a crash mid-append leaves for
// recovery to trim. Caller holds mu.
func (l *Log) writeLocked(frame []byte) error {
	if err := fault.Inject(fault.WALAppend, 0); err != nil {
		_, _ = l.f.Write(frame[:len(frame)/2])
		l.rollbackLocked()
		return fmt.Errorf("wal: append %s: %w", l.f.Name(), err)
	}
	n, err := l.f.Write(frame)
	if err != nil {
		l.rollbackLocked()
		return fmt.Errorf("wal: append %s: %w", l.f.Name(), err)
	}
	l.size += int64(n)
	l.diskBytes.Add(int64(n))
	return nil
}

// rollbackLocked truncates the active segment back to the last valid
// frame boundary after a failed append. If even the truncate fails the
// log is closed — appending past a torn frame would strand every later
// record behind an unreadable tear.
func (l *Log) rollbackLocked() {
	if err := l.f.Truncate(l.size); err != nil {
		l.logger.Error("wal: cannot roll back torn append; closing log",
			"segment", segName(l.seg), "err", err)
		l.closed = true
	}
}

// syncLocked fsyncs the active segment (injection point: fsync failure).
// Caller holds mu.
func (l *Log) syncLocked() error {
	if err := fault.Inject(fault.WALSync, 0); err != nil {
		return fmt.Errorf("wal: fsync %s: %w", l.f.Name(), err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync %s: %w", l.f.Name(), err)
	}
	l.syncs.Add(1)
	return nil
}

// run is the group-commit goroutine: each kick waits out the batching
// window (letting concurrent appends pile onto the pending commit), then
// flushes. On stop it flushes once more so no waiter is stranded.
func (l *Log) run() {
	defer close(l.done)
	for {
		select {
		case <-l.stop:
			l.flush()
			return
		case <-l.kick:
			if l.interval > 0 {
				t := time.NewTimer(l.interval)
				select {
				case <-t.C:
				case <-l.stop:
					t.Stop()
					l.flush()
					return
				}
			}
			l.flush()
		}
	}
}

// flush resolves the pending group-commit batch with one fsync.
func (l *Log) flush() {
	l.mu.Lock()
	c := l.pending
	l.pending = nil
	var err error
	if c != nil {
		err = l.syncLocked()
	}
	l.mu.Unlock()
	if c != nil {
		c.err = err
		release(c)
	}
}

// Rotate seals the active segment — fsyncing it and resolving any pending
// group commit — and opens the next one, returning the new active
// sequence number. That number is the snapshot cut: every record appended
// before Rotate returned lives in a segment below it, every record after
// lives at or above it. An empty active segment is already a clean cut
// and is reused without churn.
func (l *Log) Rotate() (uint64, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	if l.size == 0 && l.pending == nil {
		seq := l.seg
		l.mu.Unlock()
		return seq, nil
	}
	sealed, err := l.rotateLocked()
	seq := l.seg
	l.mu.Unlock()
	release(sealed)
	if err != nil {
		return 0, err
	}
	return seq, nil
}

// rotateLocked seals the active segment and opens the next. It returns
// the pending group-commit batch — already resolved with the seal's
// fsync outcome — for the caller to release once mu is dropped. On error
// the old segment stays active. Caller holds mu.
func (l *Log) rotateLocked() (sealed *commit, err error) {
	if err := fault.Inject(fault.WALRotate, 0); err != nil {
		return nil, fmt.Errorf("wal: rotate %s: %w", segName(l.seg), err)
	}
	sealed = l.pending
	l.pending = nil
	syncErr := l.syncLocked()
	if sealed != nil {
		sealed.err = syncErr
	}
	if syncErr != nil {
		return sealed, syncErr
	}
	old := l.f
	if err := l.createSegment(l.seg + 1); err != nil {
		l.f = old // keep appending to the sealed segment
		return sealed, err
	}
	if err := old.Close(); err != nil {
		l.logger.Warn("wal: closing sealed segment failed", "err", err)
	}
	l.rotations.Add(1)
	return sealed, nil
}

// TruncateBefore deletes every segment with a sequence number below cut,
// never the active one. Failures are logged, not returned: truncation is
// housekeeping after a successful snapshot and must never fail the save
// that triggered it.
func (l *Log) TruncateBefore(cut uint64) {
	l.mu.Lock()
	active := l.seg
	closed := l.closed
	l.mu.Unlock()
	if closed {
		return
	}
	if cut > active {
		cut = active
	}
	seqs, err := listSegments(l.dir)
	if err != nil {
		l.logger.Warn("wal: truncate listing failed", "err", err)
		return
	}
	for _, seq := range seqs {
		if seq >= cut {
			break
		}
		path := filepath.Join(l.dir, segName(seq))
		var size int64
		if info, err := os.Stat(path); err == nil {
			size = info.Size()
		}
		if err := os.Remove(path); err != nil {
			l.logger.Warn("wal: truncate failed", "segment", segName(seq), "err", err)
			continue
		}
		l.truncations.Add(1)
		l.segCount.Add(-1)
		l.diskBytes.Add(-size)
	}
}

// Replay walks every segment at or above from, oldest first, decoding
// records in log order into fn. It returns the number of records applied.
// The scan stops cleanly — with a logged reason, not an error — at the
// first invalid frame: that is the torn, never-acknowledged tail of a
// crash. A gap in the segment sequence also stops replay (with a louder
// log), since records past a missing segment are not contiguous history.
// fn's error aborts the replay and is returned.
//
// Replay holds the log's lock, so it cannot race appends; call it before
// serving traffic.
func (l *Log) Replay(from uint64, fn func(Record) error) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	seqs, err := listSegments(l.dir)
	if err != nil {
		return 0, err
	}
	applied := 0
	expect := uint64(0)
	haveExpect := false
	for _, seq := range seqs {
		if seq < from {
			continue
		}
		if haveExpect && seq != expect {
			l.logger.Error("wal: segment gap, replay stops",
				"want", segName(expect), "found", segName(seq))
			return applied, nil
		}
		expect, haveExpect = seq+1, true
		data, err := os.ReadFile(filepath.Join(l.dir, segName(seq)))
		if err != nil {
			return applied, fmt.Errorf("wal: replay: %w", err)
		}
		var fnErr error
		valid, scanErr := Scan(data, func(payload []byte) error {
			rec, err := DecodeRecord(payload)
			if err != nil {
				return err
			}
			if err := fn(rec); err != nil {
				fnErr = err
				return err
			}
			applied++
			return nil
		})
		if fnErr != nil {
			return applied, fnErr
		}
		if valid < len(data) {
			if seq != l.seg {
				l.logger.Error("wal: torn frame in a sealed segment, replay stops",
					"segment", segName(seq), "reason", scanErr)
			} else {
				l.logger.Warn("wal: replay stopped at torn tail",
					"segment", segName(seq), "reason", scanErr)
			}
			return applied, nil
		}
	}
	return applied, nil
}

// Sync forces an fsync of the active segment now, resolving any pending
// group commit first.
func (l *Log) Sync() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	c := l.pending
	l.pending = nil
	err := l.syncLocked()
	l.mu.Unlock()
	if c != nil {
		c.err = err
		release(c)
	}
	return err
}

// Close stops the group-commit goroutine, takes a final fsync and closes
// the active segment. Appends after Close fail with ErrClosed. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.stop)
	<-l.done
	// The run goroutine has exited; resolve any batch that raced in
	// between its final flush and the closed flag.
	l.mu.Lock()
	c := l.pending
	l.pending = nil
	err := l.syncLocked()
	cerr := l.f.Close()
	l.mu.Unlock()
	if c != nil {
		c.err = err
		release(c)
	}
	if err != nil {
		return err
	}
	return cerr
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	seg := l.seg
	l.mu.Unlock()
	return Stats{
		Appends:       l.appends.Load(),
		AppendedBytes: l.appendedBytes.Load(),
		Syncs:         l.syncs.Load(),
		Rotations:     l.rotations.Load(),
		Truncations:   l.truncations.Load(),
		Segments:      int(l.segCount.Load()),
		ActiveSegment: seg,
		DiskBytes:     l.diskBytes.Load(),
	}
}

// syncDir fsyncs dir so a created segment's directory entry survives
// power loss. Best effort, mirroring internal/snapshot.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	d.Close()
}
