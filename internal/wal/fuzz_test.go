package wal

import (
	"bytes"
	"testing"
)

// FuzzWALDecode throws arbitrary bytes at the frame scanner and record
// decoder. Invariants: Scan never panics, never reads past its input,
// reports a consumed prefix that re-scans to exactly the same records,
// and every payload it yields decodes (or errors) without panicking.
// The seed corpus covers clean logs, torn tails at several offsets, bad
// magic, forged lengths and bit flips — the states a crash or disk
// corruption leaves behind.
func FuzzWALDecode(f *testing.F) {
	frame := func(payload []byte) []byte { return encodeFrame(payload) }
	clean := append(frame(EncodeBatch([]string{"alpha", "beta"})), frame(EncodePeriod())...)
	clean = append(clean, frame(EncodeRestore([]byte{9, 9, 9}))...)
	f.Add([]byte{})
	f.Add(clean)
	f.Add(clean[:len(clean)-1])             // torn trailer
	f.Add(clean[:len(clean)-trailerSize-2]) // torn payload
	f.Add(clean[:headerSize/2])             // torn header
	forged := append([]byte{}, clean...)
	forged[5] = 0xff // forged huge length
	f.Add(forged)
	flipped := append([]byte{}, clean...)
	flipped[len(flipped)-1] ^= 0x01 // corrupt final CRC
	f.Add(flipped)
	badMagic := append([]byte("XXXX"), clean[4:]...)
	f.Add(badMagic)
	f.Add(frame(EncodeBatch(nil)))
	f.Add(frame([]byte{RecordBatch, 0xff, 0xff, 0xff, 0x7f})) // forged key count

	f.Fuzz(func(t *testing.T, data []byte) {
		var payloads [][]byte
		consumed, _ := Scan(data, func(p []byte) error {
			cp := append([]byte{}, p...)
			payloads = append(payloads, cp)
			_, _ = DecodeRecord(cp)
			return nil
		})
		if consumed < 0 || consumed > len(data) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(data))
		}
		// The consumed prefix is self-consistent: re-scanning it yields the
		// same payloads and consumes everything.
		var again [][]byte
		reconsumed, err := Scan(data[:consumed], func(p []byte) error {
			again = append(again, append([]byte{}, p...))
			return nil
		})
		if err != nil || reconsumed != consumed {
			t.Fatalf("re-scan of valid prefix: consumed %d/%d, err %v", reconsumed, consumed, err)
		}
		if len(again) != len(payloads) {
			t.Fatalf("re-scan yielded %d payloads, want %d", len(again), len(payloads))
		}
		for i := range payloads {
			if !bytes.Equal(again[i], payloads[i]) {
				t.Fatalf("payload %d differs on re-scan", i)
			}
		}
	})
}
