package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"sigstream/internal/fault"
)

// openT opens a log in a fresh temp dir and closes it on cleanup.
func openT(t *testing.T, opts Options) (*Log, string) {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	l, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { _ = l.Close() })
	return l, opts.Dir
}

// replayAll collects every record at or above from.
func replayAll(t *testing.T, l *Log, from uint64) []Record {
	t.Helper()
	var recs []Record
	n, err := l.Replay(from, func(r Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if n != len(recs) {
		t.Fatalf("Replay reported %d records, delivered %d", n, len(recs))
	}
	return recs
}

func TestRecordRoundtrip(t *testing.T) {
	cases := []Record{
		{Type: RecordBatch, Keys: []string{"a", "bb", "", "日本語"}},
		{Type: RecordBatch, Keys: []string{}},
		{Type: RecordPeriod},
		{Type: RecordRestore, Image: []byte{1, 2, 3, 0, 255}},
		{Type: RecordRestore, Image: []byte{}},
	}
	for i, want := range cases {
		var payload []byte
		switch want.Type {
		case RecordBatch:
			payload = EncodeBatch(want.Keys)
		case RecordPeriod:
			payload = EncodePeriod()
		case RecordRestore:
			payload = EncodeRestore(want.Image)
		}
		got, err := DecodeRecord(payload)
		if err != nil {
			t.Fatalf("case %d: DecodeRecord: %v", i, err)
		}
		if got.Type != want.Type {
			t.Fatalf("case %d: type %d, want %d", i, got.Type, want.Type)
		}
		if len(got.Keys) != len(want.Keys) {
			t.Fatalf("case %d: %d keys, want %d", i, len(got.Keys), len(want.Keys))
		}
		for j := range want.Keys {
			if got.Keys[j] != want.Keys[j] {
				t.Fatalf("case %d key %d: %q, want %q", i, j, got.Keys[j], want.Keys[j])
			}
		}
		if !bytes.Equal(got.Image, want.Image) {
			t.Fatalf("case %d: image %v, want %v", i, got.Image, want.Image)
		}
	}
}

func TestDecodeRecordRejectsCorruption(t *testing.T) {
	bad := [][]byte{
		nil,                                   // empty
		{99},                                  // unknown type
		{RecordBatch},                         // truncated header
		{RecordBatch, 2, 0, 0, 0},             // declares 2 keys, has none
		{RecordPeriod, 0},                     // trailing byte
		append(EncodeBatch([]string{"a"}), 0), // trailing byte after keys
	}
	// Forged huge key count must not allocate or loop forever.
	huge := []byte{RecordBatch, 0xff, 0xff, 0xff, 0xff}
	bad = append(bad, huge)
	for i, payload := range bad {
		if _, err := DecodeRecord(payload); !errors.Is(err, ErrCorrupt) {
			t.Errorf("case %d: err = %v, want ErrCorrupt", i, err)
		}
	}
}

func TestAppendReplayRoundtrip(t *testing.T) {
	l, _ := openT(t, Options{})
	want := []Record{
		{Type: RecordBatch, Keys: []string{"x", "y", "x"}},
		{Type: RecordPeriod},
		{Type: RecordBatch, Keys: []string{"z"}},
		{Type: RecordRestore, Image: []byte("image-bytes")},
	}
	for _, r := range want {
		var payload []byte
		switch r.Type {
		case RecordBatch:
			payload = EncodeBatch(r.Keys)
		case RecordPeriod:
			payload = EncodePeriod()
		case RecordRestore:
			payload = EncodeRestore(r.Image)
		}
		if err := l.Append(payload); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	got := replayAll(t, l, 0)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch:\n got %+v\nwant %+v", got, want)
	}
	st := l.Stats()
	if st.Appends != uint64(len(want)) {
		t.Fatalf("Appends = %d, want %d", st.Appends, len(want))
	}
	if st.Syncs == 0 || st.DiskBytes == 0 || st.Segments != 1 {
		t.Fatalf("unexpected stats: %+v", st)
	}
}

func TestReopenAppendsContinue(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, Options{Dir: dir})
	if err := l.Append(EncodeBatch([]string{"before"})); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := l.Append(EncodePeriod()); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	l2, _ := openT(t, Options{Dir: dir})
	if err := l2.Append(EncodeBatch([]string{"after"})); err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	got := replayAll(t, l2, 0)
	if len(got) != 2 || got[0].Keys[0] != "before" || got[1].Keys[0] != "after" {
		t.Fatalf("replay after reopen: %+v", got)
	}
}

func TestGroupCommitCoalesces(t *testing.T) {
	l, _ := openT(t, Options{SyncInterval: 20 * time.Millisecond})
	const writers, each = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := l.Append(EncodeBatch([]string{fmt.Sprintf("w%d-%d", w, i)})); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if st.Appends != writers*each {
		t.Fatalf("Appends = %d, want %d", st.Appends, writers*each)
	}
	if st.Syncs >= st.Appends {
		t.Fatalf("group commit did not coalesce: %d syncs for %d appends", st.Syncs, st.Appends)
	}
	if got := replayAll(t, l, 0); len(got) != writers*each {
		t.Fatalf("replayed %d records, want %d", len(got), writers*each)
	}
}

func TestRotationAndCut(t *testing.T) {
	l, dir := openT(t, Options{SegmentBytes: 64})
	// Empty active segment: Rotate is a no-op returning the current cut.
	cut0, err := l.Rotate()
	if err != nil {
		t.Fatalf("Rotate empty: %v", err)
	}
	if cut0 != 0 {
		t.Fatalf("empty rotate cut = %d, want 0", cut0)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append(EncodeBatch([]string{fmt.Sprintf("key-%02d-padding-padding", i)})); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if st := l.Stats(); st.Rotations == 0 || st.Segments < 2 {
		t.Fatalf("small segments did not rotate: %+v", st)
	}
	cut, err := l.Rotate()
	if err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if err := l.Append(EncodeBatch([]string{"after-cut"})); err != nil {
		t.Fatalf("Append: %v", err)
	}
	// Everything before the cut is below it; replay from the cut sees only
	// the post-cut record.
	tail := replayAll(t, l, cut)
	if len(tail) != 1 || tail[0].Keys[0] != "after-cut" {
		t.Fatalf("replay from cut %d: %+v", cut, tail)
	}
	// Truncation below the cut loses nothing at or above it and bounds disk.
	before := l.Stats()
	l.TruncateBefore(cut)
	after := l.Stats()
	if after.Segments >= before.Segments || after.DiskBytes >= before.DiskBytes {
		t.Fatalf("truncation freed nothing: before %+v after %+v", before, after)
	}
	if got := replayAll(t, l, cut); !reflect.DeepEqual(got, tail) {
		t.Fatalf("replay changed after truncation: %+v", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(entries) != after.Segments {
		t.Fatalf("%d files on disk, stats say %d segments", len(entries), after.Segments)
	}
}

func TestDiskBoundedAcrossCycles(t *testing.T) {
	l, _ := openT(t, Options{SegmentBytes: 128})
	var peak int64
	for cycle := 0; cycle < 4; cycle++ {
		for i := 0; i < 20; i++ {
			if err := l.Append(EncodeBatch([]string{fmt.Sprintf("c%d-i%02d-padding", cycle, i)})); err != nil {
				t.Fatalf("Append: %v", err)
			}
		}
		cut, err := l.Rotate()
		if err != nil {
			t.Fatalf("Rotate: %v", err)
		}
		l.TruncateBefore(cut)
		st := l.Stats()
		if st.Segments > 2 {
			t.Fatalf("cycle %d: %d segments survive truncation", cycle, st.Segments)
		}
		if peak == 0 || st.DiskBytes < peak {
			peak = st.DiskBytes
		}
		if st.DiskBytes > 4*peak {
			t.Fatalf("cycle %d: disk grew unbounded: %d bytes (floor %d)", cycle, st.DiskBytes, peak)
		}
	}
}

func TestTornTailTrimmedAtEveryBoundary(t *testing.T) {
	// Build a reference segment of three records, then truncate it at every
	// offset inside the final frame: reopen must trim the tear, keep the
	// two whole records, and accept new appends on the repaired boundary.
	ref := t.TempDir()
	l, _ := openT(t, Options{Dir: ref})
	whole := [][]byte{EncodeBatch([]string{"one"}), EncodePeriod()}
	last := EncodeBatch([]string{"torn-victim"})
	for _, p := range whole {
		if err := l.Append(p); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	prefixLen := int(l.Stats().DiskBytes)
	if err := l.Append(last); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	full, err := os.ReadFile(filepath.Join(ref, segName(0)))
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	for cutAt := prefixLen + 1; cutAt < len(full); cutAt++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(0)), full[:cutAt], 0o644); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
		l2, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cutAt, err)
		}
		if err := l2.Append(EncodeBatch([]string{"revived"})); err != nil {
			t.Fatalf("cut %d: Append after trim: %v", cutAt, err)
		}
		var got []Record
		if _, err := l2.Replay(0, func(r Record) error { got = append(got, r); return nil }); err != nil {
			t.Fatalf("cut %d: Replay: %v", cutAt, err)
		}
		if len(got) != 3 || got[0].Keys[0] != "one" || got[1].Type != RecordPeriod || got[2].Keys[0] != "revived" {
			t.Fatalf("cut %d: replay %+v", cutAt, got)
		}
		if err := l2.Close(); err != nil {
			t.Fatalf("cut %d: Close: %v", cutAt, err)
		}
	}
}

func TestAppendFaultTearsAndRollsBack(t *testing.T) {
	l, _ := openT(t, Options{})
	if err := l.Append(EncodeBatch([]string{"good"})); err != nil {
		t.Fatalf("Append: %v", err)
	}
	boom := errors.New("injected append fault")
	off := fault.Activate(fault.WALAppend, func(int) error { return boom })
	err := l.Append(EncodeBatch([]string{"lost"}))
	off()
	if !errors.Is(err, boom) {
		t.Fatalf("faulted Append = %v, want injected error", err)
	}
	// The tear was rolled back: the log keeps accepting and replay never
	// sees the refused record.
	if err := l.Append(EncodeBatch([]string{"after"})); err != nil {
		t.Fatalf("Append after fault: %v", err)
	}
	got := replayAll(t, l, 0)
	if len(got) != 2 || got[0].Keys[0] != "good" || got[1].Keys[0] != "after" {
		t.Fatalf("replay after torn append: %+v", got)
	}
}

func TestSyncFaultFailsAppends(t *testing.T) {
	for _, interval := range []time.Duration{0, 5 * time.Millisecond} {
		t.Run(fmt.Sprintf("interval=%v", interval), func(t *testing.T) {
			l, _ := openT(t, Options{SyncInterval: interval})
			boom := errors.New("injected fsync fault")
			off := fault.Activate(fault.WALSync, func(int) error { return boom })
			err := l.Append(EncodeBatch([]string{"unacked"}))
			off()
			if !errors.Is(err, boom) {
				t.Fatalf("Append under fsync fault = %v, want injected error", err)
			}
			if err := l.Append(EncodeBatch([]string{"acked"})); err != nil {
				t.Fatalf("Append after fault cleared: %v", err)
			}
			if st := l.Stats(); st.Appends != 1 {
				t.Fatalf("Appends = %d, want 1 (unacked write must not count)", st.Appends)
			}
		})
	}
}

func TestRotateFaultKeepsAppending(t *testing.T) {
	l, _ := openT(t, Options{})
	if err := l.Append(EncodeBatch([]string{"a"})); err != nil {
		t.Fatalf("Append: %v", err)
	}
	boom := errors.New("injected rotate fault")
	off := fault.Activate(fault.WALRotate, func(int) error { return boom })
	_, err := l.Rotate()
	off()
	if !errors.Is(err, boom) {
		t.Fatalf("Rotate under fault = %v, want injected error", err)
	}
	// Rotation failed but the log still appends to the old segment.
	if err := l.Append(EncodeBatch([]string{"b"})); err != nil {
		t.Fatalf("Append after rotate fault: %v", err)
	}
	if got := replayAll(t, l, 0); len(got) != 2 {
		t.Fatalf("replay: %+v", got)
	}
	if st := l.Stats(); st.Rotations != 0 || st.Segments != 1 {
		t.Fatalf("failed rotation changed segments: %+v", st)
	}
}

func TestReplayStopsAtSegmentGap(t *testing.T) {
	l, dir := openT(t, Options{SegmentBytes: 32})
	for i := 0; i < 8; i++ {
		if err := l.Append(EncodeBatch([]string{fmt.Sprintf("key-%d-padpad", i)})); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if st := l.Stats(); st.Segments < 3 {
		t.Fatalf("want ≥3 segments, got %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Remove a middle segment: replay must stop before it, not skip over.
	if err := os.Remove(filepath.Join(dir, segName(1))); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	l2, _ := openT(t, Options{Dir: dir})
	var got []Record
	if _, err := l2.Replay(0, func(r Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(got) == 0 || got[0].Keys[0] != "key-0-padpad" {
		t.Fatalf("replay lost segment-0 records: %+v", got)
	}
	for _, r := range got {
		if r.Keys[0] == "key-7-padpad" {
			t.Fatalf("replay skipped over a gap: %+v", got)
		}
	}
}

func TestReplayPropagatesCallbackError(t *testing.T) {
	l, _ := openT(t, Options{})
	for i := 0; i < 3; i++ {
		if err := l.Append(EncodePeriod()); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	boom := errors.New("apply failed")
	seen := 0
	n, err := l.Replay(0, func(Record) error {
		seen++
		if seen == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Replay = %v, want callback error", err)
	}
	if n != 1 {
		t.Fatalf("Replay applied %d before the error, want 1", n)
	}
}
