package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Frame format, reusing internal/snapshot's CRC32-trailer discipline
// (little-endian):
//
//	offset  size  field
//	0       4     magic "SWL1"
//	4       8     payload length n
//	12      n     payload (one record, format below)
//	12+n    4     CRC32 (IEEE) over bytes [0, 12+n)
//
// A segment file is a plain concatenation of frames; the first invalid
// frame — torn tail, truncation, bit flip — ends the readable log, which
// is safe because every acknowledged record was fsynced before its append
// returned, so an unreadable tail holds only unacknowledged writes.
const (
	frameMagic  = "SWL1"
	headerSize  = 12
	trailerSize = 4
)

// Record payload format (first byte is the type):
//
//	RecordBatch:   0x01 | u32 key count | n × (u32 length | key bytes)
//	RecordPeriod:  0x02
//	RecordRestore: 0x03 | tracker checkpoint image
//
// Replay applies records strictly in log order: batches re-insert their
// keys, a period record closes the current period, and a restore record
// replaces the whole tracker state — so an operator-initiated /v1/restore
// is just another logged, replayable event.
const (
	// RecordBatch is an accepted insert batch: the keys, in arrival order.
	RecordBatch byte = 1
	// RecordPeriod is a period boundary.
	RecordPeriod byte = 2
	// RecordRestore is an accepted state restore carrying the full
	// checkpoint image that replaced the tracker.
	RecordRestore byte = 3
)

// maxRecordKeys bounds the declared key count of a batch record so a
// corrupt count cannot drive an unbounded decode loop.
const maxRecordKeys = 1 << 28

// ErrCorrupt tags every frame or record validation failure.
var ErrCorrupt = errors.New("wal: corrupt record")

// Record is one decoded log entry.
type Record struct {
	// Type is RecordBatch, RecordPeriod or RecordRestore.
	Type byte
	// Keys are the batch's keys in arrival order (RecordBatch only).
	Keys []string
	// Image is the checkpoint image (RecordRestore only).
	Image []byte
}

// EncodeBatch renders an insert batch as a record payload.
func EncodeBatch(keys []string) []byte {
	size := 5
	for _, k := range keys {
		size += 4 + len(k)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, RecordBatch)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(keys)))
	for _, k := range keys {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(k)))
		buf = append(buf, k...)
	}
	return buf
}

// EncodeBatchRecords renders a weighted wire batch as a RecordBatch
// payload. The record format has no weight field — a record with weight w
// is written as w repetitions of its key — so logs written by the binary
// ingest path decode with the same DecodeRecord, replay through the same
// path, and stay bit-identical to what EncodeBatch would have produced
// for the expanded key sequence. weights == nil means every record has
// weight 1. The caller is responsible for bounding the total expansion
// (the ingest decoder caps arrivals per frame well under maxRecordKeys).
func EncodeBatchRecords(keys [][]byte, weights []uint32) []byte {
	total := 0
	size := 5
	for i, k := range keys {
		w := 1
		if weights != nil {
			w = int(weights[i])
		}
		total += w
		size += w * (4 + len(k))
	}
	buf := make([]byte, 0, size)
	buf = append(buf, RecordBatch)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(total))
	for i, k := range keys {
		w := 1
		if weights != nil {
			w = int(weights[i])
		}
		for ; w > 0; w-- {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(k)))
			buf = append(buf, k...)
		}
	}
	return buf
}

// EncodePeriod renders a period boundary as a record payload.
func EncodePeriod() []byte { return []byte{RecordPeriod} }

// EncodeRestore renders an accepted state restore as a record payload.
func EncodeRestore(image []byte) []byte {
	buf := make([]byte, 0, 1+len(image))
	buf = append(buf, RecordRestore)
	return append(buf, image...)
}

// DecodeRecord parses one record payload. Every declared length is
// checked against the actual payload size before slicing, so a forged
// count cannot drive an allocation or an out-of-range read. Returned keys
// and images are copies that do not alias payload.
func DecodeRecord(payload []byte) (Record, error) {
	if len(payload) == 0 {
		return Record{}, fmt.Errorf("%w: empty payload", ErrCorrupt)
	}
	switch payload[0] {
	case RecordBatch:
		if len(payload) < 5 {
			return Record{}, fmt.Errorf("%w: truncated batch header", ErrCorrupt)
		}
		n := binary.LittleEndian.Uint32(payload[1:])
		if n > maxRecordKeys {
			return Record{}, fmt.Errorf("%w: implausible key count %d", ErrCorrupt, n)
		}
		keys := make([]string, 0, min(int(n), len(payload)/4))
		off := 5
		for i := uint32(0); i < n; i++ {
			if off+4 > len(payload) {
				return Record{}, fmt.Errorf("%w: truncated at key %d", ErrCorrupt, i)
			}
			l := int(binary.LittleEndian.Uint32(payload[off:]))
			off += 4
			if l < 0 || l > len(payload)-off {
				return Record{}, fmt.Errorf("%w: key %d overruns record", ErrCorrupt, i)
			}
			keys = append(keys, string(payload[off:off+l]))
			off += l
		}
		if off != len(payload) {
			return Record{}, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(payload)-off)
		}
		return Record{Type: RecordBatch, Keys: keys}, nil
	case RecordPeriod:
		if len(payload) != 1 {
			return Record{}, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(payload)-1)
		}
		return Record{Type: RecordPeriod}, nil
	case RecordRestore:
		img := make([]byte, len(payload)-1)
		copy(img, payload[1:])
		return Record{Type: RecordRestore, Image: img}, nil
	default:
		return Record{}, fmt.Errorf("%w: unknown record type %d", ErrCorrupt, payload[0])
	}
}

// encodeFrame wraps a record payload in a frame: magic, length, payload,
// CRC32 trailer.
func encodeFrame(payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload)+trailerSize)
	copy(buf, frameMagic)
	binary.LittleEndian.PutUint64(buf[4:], uint64(len(payload)))
	copy(buf[headerSize:], payload)
	sum := crc32.ChecksumIEEE(buf[:headerSize+len(payload)])
	binary.LittleEndian.PutUint32(buf[headerSize+len(payload):], sum)
	return buf
}

// Scan iterates the valid frame prefix of a segment image, calling fn
// with each frame's payload (which aliases data — fn must copy anything
// it keeps). It returns how many bytes of data form whole valid frames
// and, separately, why the scan stopped: nil at a clean end of data, an
// ErrCorrupt-wrapped reason at the first invalid frame, or fn's error.
// A declared length is checked against the remaining data before any
// slicing, so a forged multi-gigabyte length cannot drive an allocation.
func Scan(data []byte, fn func(payload []byte) error) (int, error) {
	off := 0
	for off < len(data) {
		rest := data[off:]
		if len(rest) < headerSize+trailerSize {
			return off, fmt.Errorf("%w: %d trailing bytes, need at least %d",
				ErrCorrupt, len(rest), headerSize+trailerSize)
		}
		if string(rest[:4]) != frameMagic {
			return off, fmt.Errorf("%w: bad magic %q at offset %d", ErrCorrupt, rest[:4], off)
		}
		n := binary.LittleEndian.Uint64(rest[4:])
		if n > uint64(len(rest)-headerSize-trailerSize) {
			return off, fmt.Errorf("%w: declared payload %d bytes, %d remain at offset %d",
				ErrCorrupt, n, len(rest)-headerSize-trailerSize, off)
		}
		body := rest[:headerSize+n]
		want := binary.LittleEndian.Uint32(rest[headerSize+n:])
		if got := crc32.ChecksumIEEE(body); got != want {
			return off, fmt.Errorf("%w: checksum %08x, want %08x at offset %d",
				ErrCorrupt, got, want, off)
		}
		if fn != nil {
			if err := fn(rest[headerSize : headerSize+n]); err != nil {
				return off, err
			}
		}
		off += headerSize + int(n) + trailerSize
	}
	return off, nil
}
