package wal

import (
	"bytes"
	"testing"
)

// TestEncodeBatchRecordsEquivalence pins the binary-ingest WAL encoding
// to the HTTP path's: a weighted record set must produce exactly the
// bytes EncodeBatch produces for the weight-expanded key sequence, so
// logs from either transport replay through one decoder, bit-identical.
func TestEncodeBatchRecordsEquivalence(t *testing.T) {
	keys := [][]byte{[]byte("alice"), []byte("bob"), []byte("carol")}
	weights := []uint32{2, 1, 3}
	expanded := []string{"alice", "alice", "bob", "carol", "carol", "carol"}
	got := EncodeBatchRecords(keys, weights)
	want := EncodeBatch(expanded)
	if !bytes.Equal(got, want) {
		t.Fatalf("weighted encoding diverges from expanded encoding:\n got %x\nwant %x", got, want)
	}

	// nil weights = all ones.
	got = EncodeBatchRecords(keys, nil)
	want = EncodeBatch([]string{"alice", "bob", "carol"})
	if !bytes.Equal(got, want) {
		t.Fatalf("unit-weight encoding diverges:\n got %x\nwant %x", got, want)
	}

	// And the round trip decodes to the expanded sequence.
	rec, err := DecodeRecord(EncodeBatchRecords(keys, weights))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Type != RecordBatch || len(rec.Keys) != len(expanded) {
		t.Fatalf("decoded %d keys of type %d", len(rec.Keys), rec.Type)
	}
	for i, k := range expanded {
		if rec.Keys[i] != k {
			t.Fatalf("key %d = %q, want %q", i, rec.Keys[i], k)
		}
	}
}
