package exp

import (
	"fmt"
	"time"

	"sigstream/internal/ltc"
	"sigstream/internal/stream"
)

// EvalTrace scores a tracker line-up on a user-provided stream ("bring
// your own trace"): the workload is exact-counted once, then every
// algorithm of the selected task runs at each memory budget and is scored
// on precision and ARE. Task is "frequent", "persistent" or "significant"
// (the latter using the supplied weights).
func EvalTrace(s *stream.Stream, task string, weights stream.Weights,
	memsBytes []int, k int) (Result, error) {
	start := time.Now()
	if s.Len() == 0 {
		return Result{}, fmt.Errorf("exp: empty trace")
	}
	if k <= 0 {
		k = 100
	}
	if len(memsBytes) == 0 {
		memsBytes = []int{16 << 10, 64 << 10}
	}

	var specsFor func(mem, k, ipp int) []spec
	switch task {
	case "frequent":
		weights = stream.Frequent
		specsFor = frequentSpecs
	case "persistent":
		weights = stream.Persistent
		specsFor = persistentSpecs
	case "significant":
		if weights == (stream.Weights{}) {
			weights = stream.Balanced
		}
		w := weights
		specsFor = func(mem, k, ipp int) []spec {
			specs := significantSpecs(mem, k, ipp, w)
			// Include the full LTC ablation variants for custom traces.
			specs = append(specs, spec{"LTC-noLTR", func() stream.Tracker {
				return ltc.New(ltc.Options{MemoryBytes: mem, Weights: w,
					DisableLongTailReplacement: true, ItemsPerPeriod: ipp})
			}})
			return specs
		}
	default:
		return Result{}, fmt.Errorf("exp: unknown task %q (want frequent, persistent or significant)", task)
	}

	w := newWorkloads(QuickScale)
	o := w.oracleFor(s, weights)
	label := s.Label
	if label == "" {
		label = "trace"
	}
	var rows []Row
	for _, mem := range memsBytes {
		reports := runPoint(s, o, specsFor(mem, k, s.ItemsPerPeriod()), k)
		for algo, r := range reports {
			rows = append(rows,
				Row{Figure: "trace", Dataset: label, Series: algo, X: kb(mem),
					Metric: "precision", Value: r.Precision},
				Row{Figure: "trace", Dataset: label, Series: algo, X: kb(mem),
					Metric: "ARE", Value: r.ARE})
		}
	}
	return Result{Figure: "trace",
		Title:   fmt.Sprintf("custom trace: %s items (k=%d, α:β=%s)", task, k, weights),
		Rows:    rows,
		Elapsed: time.Since(start),
	}, nil
}
