package exp

import (
	"strconv"
	"sync"
	"time"

	"sigstream/internal/hashing"
	"sigstream/internal/ltc"
	"sigstream/internal/pipeline"
	"sigstream/internal/stream"
)

// miniSharded is a self-contained sharded LTC for the pipeline figure: the
// exp package cannot import the public sigstream package (the root tests
// import exp), so the figure rebuilds the same shape — item-space hash
// partition, one mutex-guarded LTC per shard — from the internal pieces.
type miniSharded struct {
	mus []sync.Mutex
	ls  []*ltc.LTC
}

func newMiniSharded(mem, shards, itemsPerPeriod int) *miniSharded {
	m := &miniSharded{mus: make([]sync.Mutex, shards), ls: make([]*ltc.LTC, shards)}
	ipp := 0
	if itemsPerPeriod > 0 {
		ipp = (itemsPerPeriod + shards - 1) / shards
	}
	for i := range m.ls {
		m.ls[i] = ltc.New(ltc.Options{MemoryBytes: mem / shards,
			Weights: stream.Balanced, ItemsPerPeriod: ipp})
	}
	return m
}

// owner mirrors the public Sharded partition (Mix64 mod shards), so the
// figure measures the same item placement the library uses.
func (m *miniSharded) owner(it stream.Item) int {
	return int(hashing.Mix64(it) % uint64(len(m.ls)))
}

func (m *miniSharded) endPeriod() {
	for i := range m.ls {
		m.mus[i].Lock()
		m.ls[i].EndPeriod()
		m.mus[i].Unlock()
	}
}

// insertBatchSync partitions one batch by owning shard and applies each
// sub-batch under that shard's lock — the synchronous sharded batch path.
func (m *miniSharded) insertBatchSync(items []stream.Item, scratch [][]stream.Item) {
	for i := range scratch {
		scratch[i] = scratch[i][:0]
	}
	for _, it := range items {
		s := m.owner(it)
		scratch[s] = append(scratch[s], it)
	}
	for s, sub := range scratch {
		if len(sub) == 0 {
			continue
		}
		m.mus[s].Lock()
		m.ls[s].InsertBatch(sub)
		m.mus[s].Unlock()
	}
}

// PipelineSweep measures single-producer ingestion throughput (Mops) of
// the synchronous sharded batch path against the asynchronous pipelined
// front-end at 1–8 shards, on the Network workload in 256-item batches
// with the same period cadence on both sides (the pipeline flushes before
// each period boundary). On a multi-core host the pipelined series pulls
// ahead as shards grow — the producer only partitions and enqueues while
// shard workers apply in parallel; on a single core it instead prices the
// hand-off overhead.
func PipelineSweep(sc Scale) Result {
	start := time.Now()
	w := newWorkloads(sc)
	s := w.get("network")
	const mem = 50 << 10
	const batch = 256
	per := s.ItemsPerPeriod()
	var rows []Row

	for _, shards := range []int{1, 2, 4, 8} {
		x := strconv.Itoa(shards)

		sync := newMiniSharded(mem, shards, per)
		scratch := make([][]stream.Item, shards)
		t0 := time.Now()
		replayBatches(s, batch, func(sub []stream.Item) {
			sync.insertBatchSync(sub, scratch)
		}, sync.endPeriod)
		el := time.Since(t0)
		rows = append(rows, Row{Figure: "pipe", Dataset: s.Label, Series: "sync",
			X: x, Metric: "Mops", Value: float64(s.Len()) / el.Seconds() / 1e6})

		piped := newMiniSharded(mem, shards, per)
		sinks := make([]pipeline.Sink, shards)
		for i := range sinks {
			i := i
			sinks[i] = pipeline.SinkFunc(func(items []uint64) {
				piped.mus[i].Lock()
				defer piped.mus[i].Unlock()
				piped.ls[i].InsertBatch(items)
			})
		}
		in := pipeline.New(sinks, pipeline.Options{})
		t0 = time.Now()
		replayBatches(s, batch, func(sub []stream.Item) {
			_ = in.Submit(sub)
		}, func() {
			_ = in.Flush()
			piped.endPeriod()
		})
		_ = in.Flush()
		el = time.Since(t0)
		_ = in.Close()
		rows = append(rows, Row{Figure: "pipe", Dataset: s.Label, Series: "pipelined",
			X: x, Metric: "Mops", Value: float64(s.Len()) / el.Seconds() / 1e6})
	}
	return Result{Figure: "pipe", Title: "Pipelined vs synchronous sharded ingestion",
		PaperNote: "beyond the paper: asynchronous sharded front-end, single producer",
		Rows:      rows, Elapsed: time.Since(start)}
}

// replayBatches feeds the stream in batches of up to batch items that
// never span a period boundary, invoking endPeriod at each boundary —
// the cadence of stream.ReplayBatch, generalized over a function pair.
func replayBatches(s *stream.Stream, batch int, apply func([]stream.Item), endPeriod func()) {
	per := s.ItemsPerPeriod()
	fed := 0
	for off := 0; off < len(s.Items); {
		n := batch
		if rem := per - fed; n > rem {
			n = rem
		}
		if rem := len(s.Items) - off; n > rem {
			n = rem
		}
		apply(s.Items[off : off+n])
		off += n
		fed += n
		if fed == per {
			endPeriod()
			fed = 0
		}
	}
	if fed != 0 {
		endPeriod()
	}
}
