package exp

import (
	"fmt"

	"sigstream/internal/gen"
	"sigstream/internal/oracle"
	"sigstream/internal/stream"
)

// oracleFor computes an oracle for an ad-hoc (non-preset) stream. These are
// not cached: sweep experiments own their streams.
func (w *workloads) oracleFor(s *stream.Stream, weights stream.Weights) *oracle.Oracle {
	return oracle.FromStream(s, weights)
}

// genNetworkWithPeriods generates the Network-like workload with a custom
// period count, for the appendix period sweep.
func genNetworkWithPeriods(n, periods int, seed int64) *stream.Stream {
	m := n / 5
	if m < 64 {
		m = 64
	}
	return gen.Generate(gen.Config{
		N: n, M: m, Periods: periods, Skew: 0.9,
		Head: 500, TailWindowFrac: 0.1, Seed: seed,
		Label: fmt.Sprintf("Network-T%d", periods),
	})
}

// genZipf generates a plain Zipf stream with the given skew, for the
// appendix synthetic-dataset sweep.
func genZipf(n int, gamma float64, seed int64) *stream.Stream {
	s := gen.ZipfStream(n, n/10, 20, gamma, seed)
	s.Label = fmt.Sprintf("Zipf-%.1f", gamma)
	return s
}
