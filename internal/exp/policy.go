package exp

import (
	"fmt"
	"time"

	"sigstream/internal/ltc"
	"sigstream/internal/metrics"
	"sigstream/internal/pie"
	"sigstream/internal/stream"
)

// PolicySweep is the replacement-policy ablation behind DESIGN.md's
// Long-tail Replacement discussion: the paper's long-tail rule versus the
// basic initial value, the second-smallest value without the minus-one,
// and the eager Space-Saving rule the paper argues against (Section I-C's
// motivating contrast). Measured on the Network dataset with both
// precision and ARE, since the eager rule's damage shows up mostly as
// overestimation error.
func PolicySweep(sc Scale) Result {
	start := time.Now()
	w := newWorkloads(sc)
	s := w.get("network")
	o := w.oracle("network", stream.Balanced)
	k := 1000
	if sc.Quick {
		k = 200
	}
	mems := memPointsQ(sc,
		[]int{50 << 10, 100 << 10, 200 << 10, 300 << 10},
		[]int{4 << 10, 10 << 10, 20 << 10})
	policies := []ltc.ReplacementPolicy{
		ltc.ReplaceLongTail, ltc.ReplaceBasic,
		ltc.ReplaceSecondSmallest, ltc.ReplaceEager,
	}
	var rows []Row
	for _, mem := range mems {
		for _, p := range policies {
			l := ltc.New(ltc.Options{MemoryBytes: mem, Weights: stream.Balanced,
				Replacement: p, ItemsPerPeriod: s.ItemsPerPeriod()})
			s.Replay(l)
			r := metrics.Evaluate(o, l, k)
			rows = append(rows,
				Row{Figure: "policy", Dataset: s.Label, Series: p.String(),
					X: kb(mem), Metric: "precision", Value: r.Precision},
				Row{Figure: "policy", Dataset: s.Label, Series: p.String(),
					X: kb(mem), Metric: "ARE", Value: r.ARE})
		}
	}
	return Result{Figure: "policy", Title: "Replacement-policy ablation",
		PaperNote: "Section I-C: Space-Saving's eager min+1 rule causes large overestimation; " +
			"Long-tail Replacement avoids it",
		Rows: rows, Elapsed: time.Since(start)}
}

// PIESweep tunes the PIE baseline's per-item hash count l — a substitution
// fidelity check for DESIGN.md §6: with too few cells per item clean-cell
// groups are scarce; with too many, cells go dirty faster. The default l=2
// should sit near the knee.
func PIESweep(sc Scale) Result {
	start := time.Now()
	w := newWorkloads(sc)
	s := w.get("network")
	o := w.oracle("network", stream.Persistent)
	const k = 100
	mem := 10 << 10
	if !sc.Quick {
		mem = 100 << 10
	}
	var rows []Row
	for _, l := range []int{1, 2, 3, 4} {
		p := pie.New(pie.Options{PerPeriodBytes: mem, Hashes: l, Beta: 1})
		s.Replay(p)
		r := metrics.Evaluate(o, p, k)
		rows = append(rows, Row{Figure: "pie-l", Dataset: s.Label,
			Series: "PIE", X: fmt.Sprintf("l=%d", l), Metric: "precision",
			Value: r.Precision})
	}
	return Result{Figure: "pie-l", Title: "PIE hash-count sweep",
		PaperNote: "substitution fidelity: the fountain-coded PIE's l knob (default 2)",
		Rows:      rows, Elapsed: time.Since(start)}
}
