package exp

import (
	"time"

	"sigstream/internal/ltc"
	"sigstream/internal/stream"
)

// StatsSweep replays the workloads into an LTC at several memory budgets
// and reports the tracker's own operation counters (the stream.Stats
// snapshot every StatsReporter serves): hit rate, admission and expulsion
// rates, significance decrements, CLOCK cells swept per arrival, and final
// occupancy. It is the observability companion to the accuracy figures —
// the counters explain *why* precision moves as memory shrinks (expulsion
// rate climbs, occupancy saturates) without any oracle.
func StatsSweep(sc Scale) Result {
	start := time.Now()
	w := newWorkloads(sc)
	res := Result{Figure: "stats", Title: "Tracker operation counters vs memory (observability)",
		PaperNote: "beyond the paper: internal counters, not an accuracy metric"}

	mems := memPointsQ(sc,
		[]int{16 << 10, 64 << 10, 256 << 10},
		[]int{4 << 10, 16 << 10, 64 << 10})
	for _, ds := range []string{"caida", "network", "social"} {
		s := w.get(ds)
		for _, mem := range mems {
			t := ltc.New(ltc.Options{MemoryBytes: mem, Weights: stream.Balanced,
				ItemsPerPeriod: s.ItemsPerPeriod()})
			s.Replay(t)
			st := t.Stats()
			n := float64(st.Arrivals)
			if n == 0 {
				continue
			}
			x := kb(mem)
			res.Rows = append(res.Rows,
				Row{"stats", ds, "LTC", x, "hit-rate", float64(st.Hits) / n},
				Row{"stats", ds, "LTC", x, "admission-rate", float64(st.Admissions) / n},
				Row{"stats", ds, "LTC", x, "expulsion-rate", float64(st.Expulsions) / n},
				Row{"stats", ds, "LTC", x, "decrement-rate", float64(st.Decrements) / n},
				Row{"stats", ds, "LTC", x, "cells-swept-per-arrival", float64(st.CellsSwept) / n},
				Row{"stats", ds, "LTC", x, "occupancy", float64(st.Occupied) / float64(st.Cells)},
			)
		}
	}
	res.Elapsed = time.Since(start)
	return res
}
