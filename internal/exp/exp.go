// Package exp drives the paper's evaluation: one function per figure that
// regenerates the corresponding table or curve family on the synthetic
// workloads. cmd/sigbench and the repository-level benchmarks are thin
// wrappers around this package.
//
// Each experiment returns a Result: uniform rows of
// (figure, dataset, series, x, metric, value), renderable as an aligned
// table or CSV. Scales: Quick keeps every figure seconds-fast for tests;
// Paper uses the paper's stream sizes (10 M / 10 M / 1.5 M items).
package exp

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"sigstream/internal/adapters"
	"sigstream/internal/cmsketch"
	"sigstream/internal/countsketch"
	"sigstream/internal/gen"
	"sigstream/internal/lossycounting"
	"sigstream/internal/ltc"
	"sigstream/internal/metrics"
	"sigstream/internal/oracle"
	"sigstream/internal/pie"
	"sigstream/internal/spacesaving"
	"sigstream/internal/stream"
)

// Scale selects stream sizes for a run.
type Scale struct {
	// CAIDA, Network, Social and Zipf are the arrival counts for the four
	// workload families.
	CAIDA, Network, Social, Zipf int
	// Seed drives all generation.
	Seed int64
	// Quick trims the parameter sweeps (fewer memory points, smaller k)
	// so a full figure runs in seconds.
	Quick bool
}

// QuickScale is the test/CI scale.
var QuickScale = Scale{
	CAIDA: 200_000, Network: 200_000, Social: 150_000, Zipf: 200_000,
	Seed: 1, Quick: true,
}

// PaperScale matches the paper's dataset sizes.
var PaperScale = Scale{
	CAIDA: 10_000_000, Network: 10_000_000, Social: 1_500_000, Zipf: 10_000_000,
	Seed: 1,
}

// Row is one measured point.
type Row struct {
	Figure  string  // e.g. "9a"
	Dataset string  // e.g. "CAIDA-like"
	Series  string  // algorithm or curve name
	X       string  // x-axis value, e.g. "10KB", "1:1", "500"
	Metric  string  // "precision", "ARE", "correct-rate", "bound", "frequency", "Mops"
	Value   float64 // the measurement
}

// Result is a figure's full output.
type Result struct {
	Figure string
	Title  string
	// PaperNote summarizes what the paper reports for this figure, for
	// side-by-side comparison in EXPERIMENTS.md.
	PaperNote string
	Rows      []Row
	Elapsed   time.Duration
}

// Experiment is a named, runnable figure regenerator.
type Experiment struct {
	ID    string
	Title string
	Run   func(Scale) Result
}

// Registry lists every reproducible figure in execution order.
func Registry() []Experiment {
	return []Experiment{
		{"6", "Frequency distribution is long-tailed (per bucket & per dataset)", Fig6},
		{"7a", "Correct rate: theoretical bound vs measured", Fig7a},
		{"7b", "Error bound: theoretical bound vs measured", Fig7b},
		{"8a", "Long-tail Replacement ablation: precision vs memory", Fig8a},
		{"8b", "Long-tail Replacement ablation: precision vs α:β", Fig8b},
		{"9", "Finding frequent items: precision vs memory (3 datasets)", Fig9},
		{"9d", "Finding frequent items: precision vs k", Fig9d},
		{"10", "Finding frequent items: ARE vs memory (3 datasets)", Fig10},
		{"10d", "Finding frequent items: ARE vs k", Fig10d},
		{"11", "Deviation Eliminator ablation: precision vs memory", Fig11},
		{"12", "Finding persistent items: precision vs memory (3 datasets)", Fig12},
		{"12d", "Finding persistent items: precision vs k", Fig12d},
		{"13", "Finding persistent items: ARE vs memory (3 datasets)", Fig13},
		{"13d", "Finding persistent items: ARE vs k", Fig13d},
		{"14", "Finding significant items: precision vs memory (3 datasets)", Fig14},
		{"15", "Finding significant items: ARE vs memory (3 datasets)", Fig15},
		{"tput", "Insertion throughput (Mops)", Throughput},
		{"pipe", "Pipelined vs synchronous sharded ingestion (Mops)", PipelineSweep},
		{"d", "Appendix: LTC bucket width d sweep", DSweep},
		{"policy", "Ablation: replacement policy (long-tail vs basic vs eager)", PolicySweep},
		{"periods", "Appendix: varying the number of periods", PeriodSweep},
		{"zipf", "Appendix: synthetic Zipf skew sweep", ZipfSweep},
		{"ext", "Extensions: window/decay on a regime shift (beyond the paper)", ExtSweep},
		{"pie-l", "Tuning: PIE per-item hash count", PIESweep},
		{"extfreq", "Extensions: frequent items incl. Misra-Gries and Sampling", ExtFreqSweep},
		{"data", "Workload distribution statistics (companion to Fig 6)", DataSweep},
		{"stats", "Tracker operation counters vs memory (observability)", StatsSweep},
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// --- workload cache ---------------------------------------------------------

type workloads struct {
	sc      Scale
	streams map[string]*stream.Stream
	oracles map[string]*oracle.Oracle
}

func newWorkloads(sc Scale) *workloads {
	return &workloads{sc: sc,
		streams: map[string]*stream.Stream{},
		oracles: map[string]*oracle.Oracle{},
	}
}

func (w *workloads) get(name string) *stream.Stream {
	if s, ok := w.streams[name]; ok {
		return s
	}
	var s *stream.Stream
	switch name {
	case "caida":
		s = gen.CAIDALike(w.sc.CAIDA, w.sc.Seed)
	case "network":
		s = gen.NetworkLike(w.sc.Network, w.sc.Seed)
	case "social":
		s = gen.SocialLike(w.sc.Social, w.sc.Seed)
	case "zipf":
		s = gen.ZipfStream(w.sc.Zipf, w.sc.Zipf/10, 20, 1.0, w.sc.Seed)
	default:
		panic("exp: unknown workload " + name)
	}
	w.streams[name] = s
	return s
}

func (w *workloads) oracle(name string, weights stream.Weights) *oracle.Oracle {
	key := fmt.Sprintf("%s/%v", name, weights)
	if o, ok := w.oracles[key]; ok {
		return o
	}
	o := oracle.FromStream(w.get(name), weights)
	w.oracles[key] = o
	return o
}

// --- tracker line-ups -------------------------------------------------------

type spec struct {
	name  string
	build func() stream.Tracker
}

// frequentSpecs is the paper's Fig 9/10 line-up: SS, LC, Count, CM, CU, LTC.
func frequentSpecs(mem, k, itemsPerPeriod int) []spec {
	alpha := 1.0
	return []spec{
		{"SpaceSaving", func() stream.Tracker { return spacesaving.New(mem, alpha) }},
		{"LossyCounting", func() stream.Tracker { return lossycounting.New(mem, alpha) }},
		{"Count", func() stream.Tracker { return countsketch.NewTracker(mem, k, alpha) }},
		{"CM", func() stream.Tracker { return cmsketch.NewTracker(cmsketch.CM, mem, k, alpha) }},
		{"CU", func() stream.Tracker { return cmsketch.NewTracker(cmsketch.CU, mem, k, alpha) }},
		{"LTC", func() stream.Tracker {
			return ltc.New(ltc.Options{MemoryBytes: mem, Weights: stream.Frequent,
				ItemsPerPeriod: itemsPerPeriod})
		}},
	}
}

// persistentSpecs is the Fig 12/13 line-up: PIE (T× memory), CM+BF, CU+BF,
// LTC. mem is the nominal per-algorithm budget; PIE receives it per period.
func persistentSpecs(mem, k, itemsPerPeriod int) []spec {
	beta := 1.0
	return []spec{
		{"PIE", func() stream.Tracker {
			return pie.New(pie.Options{PerPeriodBytes: mem, Beta: beta})
		}},
		{"CM+BF", func() stream.Tracker {
			return adapters.NewPersistent(adapters.CMFactory(), mem, k, beta)
		}},
		{"CU+BF", func() stream.Tracker {
			return adapters.NewPersistent(adapters.CUFactory(), mem, k, beta)
		}},
		{"LTC", func() stream.Tracker {
			return ltc.New(ltc.Options{MemoryBytes: mem, Weights: stream.Persistent,
				ItemsPerPeriod: itemsPerPeriod})
		}},
	}
}

// significantSpecs is the Fig 14/15 line-up: CM-sig, CU-sig, LTC.
func significantSpecs(mem, k, itemsPerPeriod int, w stream.Weights) []spec {
	return []spec{
		{"CM-sig", func() stream.Tracker {
			return adapters.NewSignificant(adapters.CMFactory(), mem, k, w)
		}},
		{"CU-sig", func() stream.Tracker {
			return adapters.NewSignificant(adapters.CUFactory(), mem, k, w)
		}},
		{"LTC", func() stream.Tracker {
			return ltc.New(ltc.Options{MemoryBytes: mem, Weights: w,
				ItemsPerPeriod: itemsPerPeriod})
		}},
	}
}

// runPoint replays s into each spec's tracker and scores it.
func runPoint(s *stream.Stream, o *oracle.Oracle, specs []spec, k int) map[string]metrics.Report {
	out := make(map[string]metrics.Report, len(specs))
	for _, sp := range specs {
		t := sp.build()
		s.Replay(t)
		out[sp.name] = metrics.Evaluate(o, t, k)
	}
	return out
}

// --- formatting helpers -----------------------------------------------------

func kb(bytes int) string { return fmt.Sprintf("%dKB", bytes/1024) }

// memPoints trims a sweep when Quick.
func memPoints(sc Scale, full []int) []int {
	if !sc.Quick || len(full) <= 3 {
		return full
	}
	return []int{full[0], full[len(full)/2], full[len(full)-1]}
}

// memPointsQ returns the paper's sweep at full scale and an explicit
// scaled-down list when Quick. Quick streams are ~50× shorter than the
// paper's, so the paper's memory values would remove all pressure and
// flatten every curve at precision 1; the quick lists restore the
// memory-to-stream ratio the figure is about.
func memPointsQ(sc Scale, full, quick []int) []int {
	if sc.Quick {
		return quick
	}
	return full
}

func kPoints(sc Scale, full []int) []int {
	if !sc.Quick || len(full) <= 2 {
		return full
	}
	return []int{full[0], full[len(full)-1]}
}

// Render formats a Result as an aligned text table.
func Render(r Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %s — %s\n", r.Figure, r.Title)
	if r.PaperNote != "" {
		fmt.Fprintf(&b, "paper: %s\n", r.PaperNote)
	}
	fmt.Fprintf(&b, "elapsed: %v\n", r.Elapsed.Round(time.Millisecond))
	if len(r.Rows) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%-14s %-12s %-10s %-12s %s\n",
		"dataset", "series", "x", "metric", "value")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s %-12s %-10s %-12s %.6g\n",
			row.Dataset, row.Series, row.X, row.Metric, row.Value)
	}
	return b.String()
}

// CSV formats a Result as comma-separated values with a header.
func CSV(r Result) string {
	var b strings.Builder
	b.WriteString("figure,dataset,series,x,metric,value\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%s,%s,%s,%s,%g\n",
			row.Figure, row.Dataset, row.Series, row.X, row.Metric, row.Value)
	}
	return b.String()
}

// Series extracts (x, value) points for one series+metric, preserving row
// order — convenient for tests and plotting.
func Series(r Result, dataset, series, metric string) []float64 {
	var vs []float64
	for _, row := range r.Rows {
		if row.Dataset == dataset && row.Series == series && row.Metric == metric {
			vs = append(vs, row.Value)
		}
	}
	return vs
}

// SeriesNames lists the distinct series labels in a result.
func SeriesNames(r Result) []string {
	set := map[string]struct{}{}
	for _, row := range r.Rows {
		set[row.Series] = struct{}{}
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Groups name figure subsets runnable as a unit with sigbench -fig <group>.
var Groups = map[string][]string{
	// paper: every figure of the paper's evaluation section, in order.
	"paper": {"6", "7a", "7b", "8a", "8b", "9", "9d", "10", "10d", "11",
		"12", "12d", "13", "13d", "14", "15", "tput"},
	// ablation: the optimization and design-choice studies.
	"ablation": {"8a", "8b", "11", "d", "policy", "pie-l"},
	// extensions: everything beyond the paper.
	"extensions": {"ext", "extfreq", "periods", "zipf", "stats", "pipe"},
}

// Expand resolves a figure id, group name, or "all" to experiments.
func Expand(id string) ([]Experiment, bool) {
	if id == "all" {
		return Registry(), true
	}
	if ids, ok := Groups[id]; ok {
		var out []Experiment
		for _, fid := range ids {
			e, found := Find(fid)
			if !found {
				return nil, false
			}
			out = append(out, e)
		}
		return out, true
	}
	e, ok := Find(id)
	if !ok {
		return nil, false
	}
	return []Experiment{e}, true
}
