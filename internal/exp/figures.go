package exp

import (
	"fmt"
	"time"

	"sigstream/internal/hashing"
	"sigstream/internal/ltc"
	"sigstream/internal/metrics"
	"sigstream/internal/stream"
	"sigstream/internal/theory"
)

// datasets3 are the three trace-like workloads of the paper's evaluation.
var datasets3 = []string{"caida", "network", "social"}

// Fig6 verifies the Long-tail Replacement assumption: the frequencies of
// the top-20 items — per arbitrary bucket (800 buckets, Network dataset)
// and per dataset — follow a long-tail distribution.
func Fig6(sc Scale) Result {
	start := time.Now()
	w := newWorkloads(sc)
	var rows []Row

	// (a) three arbitrary buckets of an 800-bucket hash partition.
	const buckets = 800
	h := hashing.NewBob(0x6a1)
	o := w.oracle("network", stream.Frequent)
	perBucket := make(map[int][]float64)
	for _, e := range o.All() {
		b := int(h.Hash64(e.Item)) % buckets
		if b < 0 {
			b += buckets
		}
		if b < 3 { // "three arbitrary buckets"
			perBucket[b] = append(perBucket[b], float64(e.Frequency))
		}
	}
	for b := 0; b < 3; b++ {
		fs := perBucket[b] // already sorted desc (oracle.All is sorted)
		for r := 0; r < 20 && r < len(fs); r++ {
			rows = append(rows, Row{Figure: "6a", Dataset: "Network-like",
				Series: fmt.Sprintf("bucket%d", b+1),
				X:      fmt.Sprint(r + 1), Metric: "frequency", Value: fs[r]})
		}
	}

	// (b) top-20 overall per dataset.
	for _, name := range datasets3 {
		s := w.get(name)
		for r, e := range w.oracle(name, stream.Frequent).TopK(20) {
			rows = append(rows, Row{Figure: "6b", Dataset: s.Label,
				Series: "dataset", X: fmt.Sprint(r + 1),
				Metric: "frequency", Value: float64(e.Frequency)})
		}
	}
	return Result{Figure: "6", Title: "Long-tail frequency distribution",
		PaperNote: "frequencies follow a long-tail distribution for every dataset and bucket",
		Rows:      rows, Elapsed: time.Since(start)}
}

// fig7eps returns ε scaled so that ε·N matches the paper's ε=2⁻¹⁸ at
// N=10M (ε·N ≈ 38), keeping the experiment meaningful at quick scale.
func fig7eps(n int) float64 { return 38.0 / float64(n) }

// Fig7a compares the theoretical correct-rate lower bound with the
// measured correct rate of LTC (analyzed configuration: DE on, LTR off).
func Fig7a(sc Scale) Result {
	start := time.Now()
	w := newWorkloads(sc)
	s := w.get("zipf")
	o := w.oracle("zipf", stream.Frequent)
	k := 1000
	if sc.Quick {
		k = 200
	}
	mems := memPoints(sc, []int{10 << 10, 25 << 10, 50 << 10, 100 << 10, 150 << 10})
	var rows []Row
	for _, mem := range mems {
		l := ltc.New(ltc.Options{MemoryBytes: mem, Weights: stream.Frequent,
			DisableLongTailReplacement: true, ItemsPerPeriod: s.ItemsPerPeriod()})
		s.Replay(l)
		correct := 0
		truth := o.TopK(k)
		for _, e := range truth {
			if got, ok := l.Query(e.Item); ok && got.Significance == e.Significance {
				correct++
			}
		}
		measured := float64(correct) / float64(len(truth))
		model := theory.Model{N: s.Len(), M: o.Distinct(), Gamma: 1.0,
			W: l.Buckets(), D: l.BucketWidth(), Alpha: 1, Beta: 0}
		rows = append(rows,
			Row{Figure: "7a", Dataset: "Zipf", Series: "Real", X: kb(mem),
				Metric: "correct-rate", Value: measured},
			Row{Figure: "7a", Dataset: "Zipf", Series: "Bound", X: kb(mem),
				Metric: "correct-rate", Value: model.AverageCorrectRate(k)})
	}
	return Result{Figure: "7a", Title: "Correct rate: bound vs real",
		PaperNote: "theoretical correct-rate bound always below the real correct rate",
		Rows:      rows, Elapsed: time.Since(start)}
}

// Fig7b compares the theoretical error upper bound with the measured
// probability of an ε·N significance error.
func Fig7b(sc Scale) Result {
	start := time.Now()
	w := newWorkloads(sc)
	s := w.get("zipf")
	o := w.oracle("zipf", stream.Frequent)
	k := 1000
	if sc.Quick {
		k = 200
	}
	eps := fig7eps(s.Len())
	mems := memPoints(sc, []int{10 << 10, 25 << 10, 50 << 10, 100 << 10})
	var rows []Row
	for _, mem := range mems {
		l := ltc.New(ltc.Options{MemoryBytes: mem, Weights: stream.Frequent,
			DisableLongTailReplacement: true, ItemsPerPeriod: s.ItemsPerPeriod()})
		s.Replay(l)
		exceed := 0
		truth := o.TopK(k)
		for _, e := range truth {
			got, _ := l.Query(e.Item)
			if e.Significance-got.Significance >= eps*float64(s.Len()) {
				exceed++
			}
		}
		measured := float64(exceed) / float64(len(truth))
		model := theory.Model{N: s.Len(), M: o.Distinct(), Gamma: 1.0,
			W: l.Buckets(), D: l.BucketWidth(), Alpha: 1, Beta: 0}
		rows = append(rows,
			Row{Figure: "7b", Dataset: "Zipf", Series: "Real", X: kb(mem),
				Metric: "error-rate", Value: measured},
			Row{Figure: "7b", Dataset: "Zipf", Series: "Bound", X: kb(mem),
				Metric: "error-rate", Value: model.AverageErrorBound(k, eps)})
	}
	return Result{Figure: "7b", Title: "Error bound: bound vs real",
		PaperNote: "theoretical error bound always above the real value",
		Rows:      rows, Elapsed: time.Since(start)}
}

// ablationLTC runs the Y (optimized) vs N (basic) comparison used by Fig 8
// and Fig 11.
func ablationLTC(sc Scale, figure string, weights stream.Weights,
	mems []int, k int, disable func(*ltc.Options)) []Row {
	w := newWorkloads(sc)
	s := w.get("network")
	o := w.oracle("network", weights)
	var rows []Row
	for _, mem := range mems {
		for _, variant := range []string{"Y", "N"} {
			opts := ltc.Options{MemoryBytes: mem, Weights: weights,
				ItemsPerPeriod: s.ItemsPerPeriod()}
			if variant == "N" {
				disable(&opts)
			}
			l := ltc.New(opts)
			s.Replay(l)
			r := metrics.Evaluate(o, l, k)
			rows = append(rows, Row{Figure: figure, Dataset: s.Label,
				Series: variant, X: kb(mem), Metric: "precision",
				Value: r.Precision})
		}
	}
	return rows
}

// Fig8a is the Long-tail Replacement ablation vs memory (α=1, β=1,
// k=1000, Network dataset).
func Fig8a(sc Scale) Result {
	start := time.Now()
	k := 1000
	if sc.Quick {
		k = 200
	}
	mems := memPointsQ(sc,
		[]int{50 << 10, 100 << 10, 150 << 10, 200 << 10, 250 << 10, 300 << 10},
		[]int{4 << 10, 10 << 10, 20 << 10})
	rows := ablationLTC(sc, "8a", stream.Balanced, mems, k,
		func(o *ltc.Options) { o.DisableLongTailReplacement = true })
	return Result{Figure: "8a", Title: "LTR ablation: precision vs memory",
		PaperNote: "precision of Y (with LTR) always larger than N",
		Rows:      rows, Elapsed: time.Since(start)}
}

// Fig8b is the Long-tail Replacement ablation across significance weights
// (memory 50 KB, k=1000, Network dataset).
func Fig8b(sc Scale) Result {
	start := time.Now()
	w := newWorkloads(sc)
	s := w.get("network")
	k := 1000
	if sc.Quick {
		k = 200
	}
	pairs := []stream.Weights{
		{Alpha: 0, Beta: 1}, {Alpha: 1, Beta: 10}, {Alpha: 1, Beta: 1},
		{Alpha: 10, Beta: 1}, {Alpha: 1, Beta: 0},
	}
	var rows []Row
	for _, weights := range pairs {
		o := w.oracle("network", weights)
		for _, variant := range []string{"Y", "N"} {
			mem := 50 << 10
			if sc.Quick {
				mem = 8 << 10
			}
			opts := ltc.Options{MemoryBytes: mem, Weights: weights,
				ItemsPerPeriod: s.ItemsPerPeriod()}
			if variant == "N" {
				opts.DisableLongTailReplacement = true
			}
			l := ltc.New(opts)
			s.Replay(l)
			r := metrics.Evaluate(o, l, k)
			rows = append(rows, Row{Figure: "8b", Dataset: s.Label,
				Series: variant, X: weights.String(), Metric: "precision",
				Value: r.Precision})
		}
	}
	return Result{Figure: "8b", Title: "LTR ablation: precision vs α:β",
		PaperNote: "precision of Y always larger than N across parameter pairs",
		Rows:      rows, Elapsed: time.Since(start)}
}

// Fig11 is the Deviation Eliminator ablation (α=0, β=1, k=1000, memory
// 10–50 KB, Network dataset).
func Fig11(sc Scale) Result {
	start := time.Now()
	k := 1000
	if sc.Quick {
		k = 200
	}
	mems := memPointsQ(sc,
		[]int{10 << 10, 20 << 10, 30 << 10, 40 << 10, 50 << 10},
		[]int{2 << 10, 5 << 10, 10 << 10})
	rows := ablationLTC(sc, "11", stream.Persistent, mems, k,
		func(o *ltc.Options) { o.DisableDeviationEliminator = true })
	return Result{Figure: "11", Title: "Deviation Eliminator ablation",
		PaperNote: "precision of Y slightly larger than N",
		Rows:      rows, Elapsed: time.Since(start)}
}

// sweep runs a memory sweep of a tracker line-up across the three datasets.
func sweep(sc Scale, figure string, weights stream.Weights, mems []int, k int,
	specsFor func(mem, k, itemsPerPeriod int) []spec, metric string) []Row {
	w := newWorkloads(sc)
	var rows []Row
	for _, name := range datasets3 {
		s := w.get(name)
		o := w.oracle(name, weights)
		for _, mem := range mems {
			reports := runPoint(s, o, specsFor(mem, k, s.ItemsPerPeriod()), k)
			for algo, r := range reports {
				v := r.Precision
				if metric == "ARE" {
					v = r.ARE
				}
				rows = append(rows, Row{Figure: figure, Dataset: s.Label,
					Series: algo, X: kb(mem), Metric: metric, Value: v})
			}
		}
	}
	return rows
}

// kSweep runs a k sweep on the Network dataset at fixed memory.
func kSweep(sc Scale, figure string, weights stream.Weights, mem int, ks []int,
	specsFor func(mem, k, itemsPerPeriod int) []spec, metric string) []Row {
	w := newWorkloads(sc)
	s := w.get("network")
	o := w.oracle("network", weights)
	var rows []Row
	for _, k := range ks {
		reports := runPoint(s, o, specsFor(mem, k, s.ItemsPerPeriod()), k)
		for algo, r := range reports {
			v := r.Precision
			if metric == "ARE" {
				v = r.ARE
			}
			rows = append(rows, Row{Figure: figure, Dataset: s.Label,
				Series: algo, X: fmt.Sprint(k), Metric: metric, Value: v})
		}
	}
	return rows
}

var fig9Mems = []int{5 << 10, 10 << 10, 20 << 10, 30 << 10, 40 << 10, 50 << 10}
var fig12Mems = []int{25 << 10, 50 << 10, 100 << 10, 200 << 10, 300 << 10}

// fig12MemsQuick restores memory pressure at quick stream sizes.
var fig12MemsQuick = []int{4 << 10, 10 << 10, 25 << 10}
var figKs = []int{100, 200, 500, 1000}

// Fig9 measures precision on finding frequent items vs memory.
func Fig9(sc Scale) Result {
	start := time.Now()
	rows := sweep(sc, "9", stream.Frequent, memPoints(sc, fig9Mems), 100,
		frequentSpecs, "precision")
	return Result{Figure: "9", Title: "Frequent items: precision vs memory",
		PaperNote: "LTC highest precision at every memory size (99% at 10KB on CAIDA vs 6–52% for baselines)",
		Rows:      rows, Elapsed: time.Since(start)}
}

// Fig9d measures precision on finding frequent items vs k (100 KB memory).
func Fig9d(sc Scale) Result {
	start := time.Now()
	rows := kSweep(sc, "9d", stream.Frequent, 100<<10, kPoints(sc, figKs),
		frequentSpecs, "precision")
	return Result{Figure: "9d", Title: "Frequent items: precision vs k",
		PaperNote: "LTC always above 95% while baselines fall to 19–88% at k=1000",
		Rows:      rows, Elapsed: time.Since(start)}
}

// Fig10 measures ARE on finding frequent items vs memory.
func Fig10(sc Scale) Result {
	start := time.Now()
	rows := sweep(sc, "10", stream.Frequent, memPoints(sc, fig9Mems), 100,
		frequentSpecs, "ARE")
	return Result{Figure: "10", Title: "Frequent items: ARE vs memory",
		PaperNote: "LTC ARE 10–10⁵× smaller than every baseline",
		Rows:      rows, Elapsed: time.Since(start)}
}

// Fig10d measures ARE on finding frequent items vs k (100 KB memory).
func Fig10d(sc Scale) Result {
	start := time.Now()
	rows := kSweep(sc, "10d", stream.Frequent, 100<<10, kPoints(sc, figKs),
		frequentSpecs, "ARE")
	return Result{Figure: "10d", Title: "Frequent items: ARE vs k",
		PaperNote: "LTC ARE 132–10⁵× smaller than baselines",
		Rows:      rows, Elapsed: time.Since(start)}
}

// Fig12 measures precision on finding persistent items vs memory.
func Fig12(sc Scale) Result {
	start := time.Now()
	rows := sweep(sc, "12", stream.Persistent, memPointsQ(sc, fig12Mems, fig12MemsQuick), 100,
		persistentSpecs, "precision")
	return Result{Figure: "12", Title: "Persistent items: precision vs memory",
		PaperNote: "LTC highest precision for all memory settings (70→100% on CAIDA)",
		Rows:      rows, Elapsed: time.Since(start)}
}

// Fig12d measures precision on finding persistent items vs k.
func Fig12d(sc Scale) Result {
	start := time.Now()
	rows := kSweep(sc, "12d", stream.Persistent, 100<<10, kPoints(sc, figKs),
		persistentSpecs, "precision")
	return Result{Figure: "12d", Title: "Persistent items: precision vs k",
		PaperNote: "LTC 99% at k=100 and always above 95%",
		Rows:      rows, Elapsed: time.Since(start)}
}

// Fig13 measures ARE on finding persistent items vs memory.
func Fig13(sc Scale) Result {
	start := time.Now()
	rows := sweep(sc, "13", stream.Persistent, memPointsQ(sc, fig12Mems, fig12MemsQuick), 100,
		persistentSpecs, "ARE")
	return Result{Figure: "13", Title: "Persistent items: ARE vs memory",
		PaperNote: "LTC ARE 23–10⁴× smaller than PIE and sketch+BF baselines",
		Rows:      rows, Elapsed: time.Since(start)}
}

// Fig13d measures ARE on finding persistent items vs k.
func Fig13d(sc Scale) Result {
	start := time.Now()
	rows := kSweep(sc, "13d", stream.Persistent, 100<<10, kPoints(sc, figKs),
		persistentSpecs, "ARE")
	return Result{Figure: "13d", Title: "Persistent items: ARE vs k",
		PaperNote: "LTC ARE 7–10⁸× smaller than baselines",
		Rows:      rows, Elapsed: time.Since(start)}
}

// sigPairs are the three α:β settings of the significant-items experiments.
var sigPairs = []stream.Weights{
	{Alpha: 1, Beta: 10}, {Alpha: 1, Beta: 1}, {Alpha: 10, Beta: 1},
}

// sigSweep runs the significant-items sweep for one metric.
func sigSweep(sc Scale, figure, metric string) []Row {
	w := newWorkloads(sc)
	mems := memPointsQ(sc, fig12Mems, fig12MemsQuick)
	const k = 100
	var rows []Row
	for _, name := range datasets3 {
		s := w.get(name)
		for _, weights := range sigPairs {
			o := w.oracle(name, weights)
			for _, mem := range mems {
				reports := runPoint(s, o,
					significantSpecs(mem, k, s.ItemsPerPeriod(), weights), k)
				for algo, r := range reports {
					v := r.Precision
					if metric == "ARE" {
						v = r.ARE
					}
					rows = append(rows, Row{Figure: figure, Dataset: s.Label,
						Series: fmt.Sprintf("%s %s", algo, weights),
						X:      kb(mem), Metric: metric, Value: v})
				}
			}
		}
	}
	return rows
}

// Fig14 measures precision on finding significant items vs memory for
// α:β ∈ {1:10, 1:1, 10:1}.
func Fig14(sc Scale) Result {
	start := time.Now()
	rows := sigSweep(sc, "14", "precision")
	return Result{Figure: "14", Title: "Significant items: precision vs memory",
		PaperNote: "LTC 99% at 50KB on CAIDA vs 41–71% for CU-sig; CU-sig beats CM-sig",
		Rows:      rows, Elapsed: time.Since(start)}
}

// Fig15 measures ARE on finding significant items vs memory.
func Fig15(sc Scale) Result {
	start := time.Now()
	rows := sigSweep(sc, "15", "ARE")
	return Result{Figure: "15", Title: "Significant items: ARE vs memory",
		PaperNote: "LTC ARE 15–10⁴× smaller than CU-sig on each parameter pair",
		Rows:      rows, Elapsed: time.Since(start)}
}

// Throughput measures insertion rate (Mops) of every line-up on the
// Network dataset at 50 KB.
func Throughput(sc Scale) Result {
	start := time.Now()
	w := newWorkloads(sc)
	s := w.get("network")
	const mem = 50 << 10
	const k = 100
	var rows []Row
	seen := map[string]bool{}
	lineups := [][]spec{
		frequentSpecs(mem, k, s.ItemsPerPeriod()),
		persistentSpecs(mem, k, s.ItemsPerPeriod()),
		significantSpecs(mem, k, s.ItemsPerPeriod(), stream.Balanced),
	}
	for _, specs := range lineups {
		for _, sp := range specs {
			if seen[sp.name] {
				continue
			}
			seen[sp.name] = true
			t := sp.build()
			t0 := time.Now()
			s.Replay(t)
			el := time.Since(t0)
			mops := float64(s.Len()) / el.Seconds() / 1e6
			rows = append(rows, Row{Figure: "tput", Dataset: s.Label,
				Series: sp.name, X: kb(mem), Metric: "Mops", Value: mops})
		}
	}
	// Batched ingestion: the same LTC fed through the BatchInserter path in
	// 256-item batches, isolating the per-arrival overhead the batch path
	// amortizes.
	{
		t := ltc.New(ltc.Options{MemoryBytes: mem, Weights: stream.Balanced,
			ItemsPerPeriod: s.ItemsPerPeriod()})
		t0 := time.Now()
		s.ReplayBatch(t, 256)
		el := time.Since(t0)
		rows = append(rows, Row{Figure: "tput", Dataset: s.Label,
			Series: "LTC-batch256", X: kb(mem), Metric: "Mops",
			Value: float64(s.Len()) / el.Seconds() / 1e6})
	}
	return Result{Figure: "tput", Title: "Insertion throughput",
		PaperNote: "LTC achieves high accuracy and high speed at the same time",
		Rows:      rows, Elapsed: time.Since(start)}
}

// DSweep reproduces the appendix experiment selecting d: precision vs the
// bucket width at fixed memory (the paper picks d=8 from it).
func DSweep(sc Scale) Result {
	start := time.Now()
	w := newWorkloads(sc)
	s := w.get("network")
	o := w.oracle("network", stream.Balanced)
	k := 1000
	if sc.Quick {
		k = 200
	}
	var rows []Row
	for _, d := range []int{1, 2, 4, 8, 16} {
		l := ltc.New(ltc.Options{MemoryBytes: 50 << 10, BucketWidth: d,
			Weights: stream.Balanced, ItemsPerPeriod: s.ItemsPerPeriod()})
		s.Replay(l)
		r := metrics.Evaluate(o, l, k)
		rows = append(rows, Row{Figure: "d", Dataset: s.Label, Series: "LTC",
			X: fmt.Sprintf("d=%d", d), Metric: "precision", Value: r.Precision})
	}
	return Result{Figure: "d", Title: "LTC bucket width sweep",
		PaperNote: "appendix experiment behind the d=8 default",
		Rows:      rows, Elapsed: time.Since(start)}
}

// PeriodSweep reproduces the appendix experiment varying the number of
// periods for the persistent-items task.
func PeriodSweep(sc Scale) Result {
	start := time.Now()
	n := sc.Network
	periods := []int{100, 200, 500, 1000}
	if sc.Quick {
		periods = []int{100, 500}
	}
	const mem = 50 << 10
	const k = 100
	var rows []Row
	for _, t := range periods {
		s := genNetworkWithPeriods(n, t, sc.Seed)
		o := newWorkloads(sc).oracleFor(s, stream.Persistent)
		reports := runPoint(s, o, persistentSpecs(mem, k, s.ItemsPerPeriod()), k)
		for algo, r := range reports {
			rows = append(rows, Row{Figure: "periods", Dataset: s.Label,
				Series: algo, X: fmt.Sprint(t), Metric: "precision",
				Value: r.Precision})
		}
	}
	return Result{Figure: "periods", Title: "Varying the number of periods",
		PaperNote: "LTC highest precision and lowest ARE for all period counts",
		Rows:      rows, Elapsed: time.Since(start)}
}

// ZipfSweep measures frequent-item precision across synthetic Zipf skews.
func ZipfSweep(sc Scale) Result {
	start := time.Now()
	const mem = 20 << 10
	const k = 100
	var rows []Row
	for _, gamma := range []float64{0.6, 0.9, 1.2, 1.5} {
		s := genZipf(sc.Zipf, gamma, sc.Seed)
		o := newWorkloads(sc).oracleFor(s, stream.Frequent)
		reports := runPoint(s, o, frequentSpecs(mem, k, s.ItemsPerPeriod()), k)
		for algo, r := range reports {
			rows = append(rows, Row{Figure: "zipf", Dataset: s.Label,
				Series: algo, X: fmt.Sprintf("γ=%.1f", gamma),
				Metric: "precision", Value: r.Precision})
		}
	}
	return Result{Figure: "zipf", Title: "Synthetic Zipf skew sweep",
		PaperNote: "appendix synthetic-dataset experiments",
		Rows:      rows, Elapsed: time.Since(start)}
}
