package exp

import (
	"time"

	"sigstream/internal/dist"
	"sigstream/internal/gen"
	"sigstream/internal/ltc"
	"sigstream/internal/misragries"
	"sigstream/internal/oracle"
	"sigstream/internal/sampling"
	"sigstream/internal/stream"
	"sigstream/internal/window"
)

// ExtSweep evaluates the beyond-the-paper recency extensions on a
// regime-shift workload: the stream's head population is replaced halfway
// through (regime A → regime B). Ground truth is the top-k of the SECOND
// half only — "who matters now" — and each tracker is scored against it:
//
//   - LTC          (all-history, the paper's semantics)
//   - LTC-decay    (exponential aging, λ=0.5)
//   - LTC-window   (jumping window over the second half's periods)
//
// All-history LTC is expected to lose precision here (old-regime items
// keep outranking), which is exactly the gap the extensions close.
func ExtSweep(sc Scale) Result {
	start := time.Now()
	n := sc.Network
	const periods = 40
	const k = 100
	half := regimeShift(n, periods, sc.Seed)

	// Oracle over the second half only.
	secondHalf := &stream.Stream{
		Items:   half.Items[len(half.Items)/2:],
		Periods: periods / 2,
		Label:   half.Label,
	}
	o := oracle.FromStream(secondHalf, stream.Frequent)

	mems := memPointsQ(sc, []int{50 << 10, 100 << 10}, []int{8 << 10, 32 << 10})
	specs := func(mem int) []spec {
		ipp := half.ItemsPerPeriod()
		return []spec{
			{"LTC", func() stream.Tracker {
				return ltc.New(ltc.Options{MemoryBytes: mem,
					Weights: stream.Frequent, ItemsPerPeriod: ipp})
			}},
			{"LTC-decay", func() stream.Tracker {
				return ltc.New(ltc.Options{MemoryBytes: mem,
					Weights: stream.Frequent, ItemsPerPeriod: ipp,
					DecayFactor: 0.5})
			}},
			{"LTC-window", func() stream.Tracker {
				return window.New(window.Options{MemoryBytes: mem,
					WindowPeriods: periods / 2, Blocks: 4,
					Weights: stream.Frequent, ItemsPerPeriod: ipp})
			}},
		}
	}

	var rows []Row
	for _, mem := range mems {
		for _, sp := range specs(mem) {
			t := sp.build()
			half.Replay(t)
			// Score against the second-half truth.
			truth := map[stream.Item]bool{}
			for _, e := range o.TopK(k) {
				truth[e.Item] = true
			}
			hits := 0
			for _, e := range t.TopK(k) {
				if truth[e.Item] {
					hits++
				}
			}
			rows = append(rows, Row{Figure: "ext", Dataset: half.Label,
				Series: sp.name, X: kb(mem), Metric: "recent-precision",
				Value: float64(hits) / k})
		}
	}
	return Result{Figure: "ext",
		Title:     "Extensions: 'significant lately' on a regime shift",
		PaperNote: "beyond the paper — window/decay extensions recover the current regime",
		Rows:      rows, Elapsed: time.Since(start)}
}

// regimeShift builds a stream whose head population swaps halfway: ranks
// 0..H-1 dominate the first half of the periods, ranks H..2H-1 the second.
func regimeShift(n, periods int, seed int64) *stream.Stream {
	halfN := n / 2
	a := gen.Generate(gen.Config{N: halfN, M: maxI(n/10, 64), Periods: periods / 2,
		Skew: 1.0, Head: 100, TailWindowFrac: 0.6, Seed: seed,
		Label: "RegimeShift"})
	b := gen.Generate(gen.Config{N: n - halfN, M: maxI(n/10, 64), Periods: periods / 2,
		Skew: 1.0, Head: 100, TailWindowFrac: 0.6, Seed: seed + 7919,
		Label: "RegimeShift"})
	items := make([]stream.Item, 0, n)
	items = append(items, a.Items...)
	items = append(items, b.Items...)
	return &stream.Stream{Items: items, Periods: periods, Label: "RegimeShift"}
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ExtFreqSweep runs the frequent-items task with the extension baselines
// (Misra-Gries, coordinated sampling) alongside the paper's line-up, on
// the Network workload.
func ExtFreqSweep(sc Scale) Result {
	start := time.Now()
	w := newWorkloads(sc)
	s := w.get("network")
	o := w.oracle("network", stream.Frequent)
	const k = 100
	mems := memPointsQ(sc, []int{10 << 10, 50 << 10}, []int{5 << 10, 20 << 10})
	var rows []Row
	for _, mem := range mems {
		specs := frequentSpecs(mem, k, s.ItemsPerPeriod())
		specs = append(specs,
			spec{"MisraGries", func() stream.Tracker {
				return misragries.New(mem, 1)
			}},
			spec{"Sampling", func() stream.Tracker {
				return sampling.New(mem, o.Distinct(), stream.Frequent)
			}},
		)
		reports := runPoint(s, o, specs, k)
		for algo, r := range reports {
			rows = append(rows, Row{Figure: "extfreq", Dataset: s.Label,
				Series: algo, X: kb(mem), Metric: "precision", Value: r.Precision})
		}
	}
	return Result{Figure: "extfreq",
		Title:     "Extended frequent-items line-up (with MG and Sampling)",
		PaperNote: "beyond the paper — the related-work baselines the paper cites but does not plot",
		Rows:      rows, Elapsed: time.Since(start)}
}

// DataSweep reports the distribution statistics of the three synthetic
// workloads (via internal/dist), documenting that the generators satisfy
// the paper's long-tail assumption (the quantitative companion to Fig 6).
func DataSweep(sc Scale) Result {
	start := time.Now()
	w := newWorkloads(sc)
	var rows []Row
	for _, name := range datasets3 {
		s := w.get(name)
		r := dist.Analyze(s)
		longTail := 0.0
		if r.LongTail {
			longTail = 1
		}
		for _, row := range []Row{
			{Metric: "distinct", Value: float64(r.Distinct)},
			{Metric: "top100-share", Value: r.Top100Share},
			{Metric: "zipf-skew", Value: r.ZipfSkew},
			{Metric: "fit-r2", Value: r.FitR2},
			{Metric: "long-tail", Value: longTail},
		} {
			row.Figure, row.Dataset, row.Series, row.X = "data", s.Label, "dist", "-"
			rows = append(rows, row)
		}
	}
	return Result{Figure: "data", Title: "Workload distribution statistics",
		PaperNote: "quantitative companion to Fig 6: the generators are long-tailed",
		Rows:      rows, Elapsed: time.Since(start)}
}
