package exp

import (
	"fmt"
	"time"

	"sigstream/internal/stats"
)

// RunSeeds replicates an experiment across `seeds` generation seeds and
// aggregates each (dataset, series, x, metric) point into mean and
// standard-deviation rows — the statistically honest version of a single
// run, since the synthetic workloads are resampled per seed.
//
// The returned result carries two rows per point: the original metric name
// with the mean, and "<metric>±" with the sample standard deviation.
func RunSeeds(e Experiment, sc Scale, seeds int) Result {
	start := time.Now()
	if seeds < 1 {
		seeds = 1
	}
	type key struct{ dataset, series, x, metric string }
	samples := map[key][]float64{}
	var order []key
	var template Result
	for i := 0; i < seeds; i++ {
		run := sc
		run.Seed = sc.Seed + int64(i)
		r := e.Run(run)
		if i == 0 {
			template = r
		}
		for _, row := range r.Rows {
			k := key{row.Dataset, row.Series, row.X, row.Metric}
			if _, ok := samples[k]; !ok {
				order = append(order, k)
			}
			samples[k] = append(samples[k], row.Value)
		}
	}
	out := Result{
		Figure:    template.Figure,
		Title:     fmt.Sprintf("%s (mean of %d seeds)", template.Title, seeds),
		PaperNote: template.PaperNote,
		Elapsed:   time.Since(start),
	}
	for _, k := range order {
		vs := samples[k]
		out.Rows = append(out.Rows,
			Row{Figure: template.Figure, Dataset: k.dataset, Series: k.series,
				X: k.x, Metric: k.metric, Value: stats.Mean(vs)},
			Row{Figure: template.Figure, Dataset: k.dataset, Series: k.series,
				X: k.x, Metric: k.metric + "±", Value: stats.Std(vs)})
	}
	return out
}
