package exp

import (
	"strings"
	"testing"

	"sigstream/internal/stream"
)

// tinyScale keeps exp tests fast while preserving the workload shapes.
var tinyScale = Scale{
	CAIDA: 60_000, Network: 60_000, Social: 60_000, Zipf: 100_000,
	Seed: 7, Quick: true,
}

func mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	t := 0.0
	for _, v := range vs {
		t += v
	}
	return t / float64(len(vs))
}

func TestRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Registry() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete registry entry %+v", e)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		ids[e.ID] = true
	}
	// Every evaluation figure of the paper must be present.
	for _, want := range []string{"6", "7a", "7b", "8a", "8b", "9", "9d",
		"10", "10d", "11", "12", "12d", "13", "13d", "14", "15", "tput",
		"d", "policy", "periods", "zipf", "ext"} {
		if !ids[want] {
			t.Fatalf("figure %s missing from registry", want)
		}
	}
	if _, ok := Find("9"); !ok {
		t.Fatal("Find failed")
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("Find matched a non-existent id")
	}
}

func TestFig6LongTailShape(t *testing.T) {
	r := Fig6(tinyScale)
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Per-dataset top-20: rank-1 frequency must dwarf rank-20.
	for _, ds := range []string{"CAIDA-like", "Network-like", "Social-like"} {
		vs := Series(r, ds, "dataset", "frequency")
		if len(vs) != 20 {
			t.Fatalf("%s: got %d ranks, want 20", ds, len(vs))
		}
		if vs[0] < 3*vs[19] {
			t.Fatalf("%s: top frequency %.0f not ≫ rank-20 %.0f (no long tail)",
				ds, vs[0], vs[19])
		}
		for i := 1; i < len(vs); i++ {
			if vs[i] > vs[i-1] {
				t.Fatalf("%s: frequencies not non-increasing", ds)
			}
		}
	}
}

func TestFig7aBoundBelowReal(t *testing.T) {
	r := Fig7a(tinyScale)
	real := Series(r, "Zipf", "Real", "correct-rate")
	bound := Series(r, "Zipf", "Bound", "correct-rate")
	if len(real) == 0 || len(real) != len(bound) {
		t.Fatalf("series mismatch: %d real, %d bound", len(real), len(bound))
	}
	for i := range real {
		if bound[i] > real[i]+0.10 {
			t.Fatalf("point %d: bound %.3f above real %.3f", i, bound[i], real[i])
		}
	}
}

func TestFig7bBoundAboveReal(t *testing.T) {
	r := Fig7b(tinyScale)
	real := Series(r, "Zipf", "Real", "error-rate")
	bound := Series(r, "Zipf", "Bound", "error-rate")
	if len(real) == 0 || len(real) != len(bound) {
		t.Fatal("series mismatch")
	}
	for i := range real {
		if bound[i]+1e-9 < real[i] {
			t.Fatalf("point %d: bound %.4f below real %.4f", i, bound[i], real[i])
		}
	}
}

func TestFig8aLTRHelps(t *testing.T) {
	r := Fig8a(tinyScale)
	y := Series(r, "Network-like", "Y", "precision")
	n := Series(r, "Network-like", "N", "precision")
	if len(y) == 0 || len(y) != len(n) {
		t.Fatal("series mismatch")
	}
	if mean(y)+0.03 < mean(n) {
		t.Fatalf("LTR hurt precision: Y mean %.3f vs N mean %.3f", mean(y), mean(n))
	}
}

func TestFig11DEHelps(t *testing.T) {
	r := Fig11(tinyScale)
	y := Series(r, "Network-like", "Y", "precision")
	n := Series(r, "Network-like", "N", "precision")
	if len(y) == 0 {
		t.Fatal("empty series")
	}
	if mean(y)+0.03 < mean(n) {
		t.Fatalf("DE hurt precision: Y mean %.3f vs N mean %.3f", mean(y), mean(n))
	}
}

func TestFig9LTCDominates(t *testing.T) {
	r := Fig9(tinyScale)
	for _, ds := range []string{"CAIDA-like", "Network-like", "Social-like"} {
		ltcMean := mean(Series(r, ds, "LTC", "precision"))
		for _, algo := range []string{"SpaceSaving", "LossyCounting", "Count", "CM", "CU"} {
			if base := mean(Series(r, ds, algo, "precision")); ltcMean+0.05 < base {
				t.Fatalf("%s: LTC mean precision %.3f below %s %.3f",
					ds, ltcMean, algo, base)
			}
		}
		if ltcMean < 0.5 {
			t.Fatalf("%s: LTC mean precision %.3f implausibly low", ds, ltcMean)
		}
	}
}

func TestFig10LTCLowestARE(t *testing.T) {
	r := Fig10(tinyScale)
	for _, ds := range []string{"CAIDA-like", "Network-like", "Social-like"} {
		ltcMean := mean(Series(r, ds, "LTC", "ARE"))
		for _, algo := range []string{"SpaceSaving", "LossyCounting", "Count", "CM", "CU"} {
			if base := mean(Series(r, ds, algo, "ARE")); ltcMean > base+0.05 {
				t.Fatalf("%s: LTC mean ARE %.4f above %s %.4f", ds, ltcMean, algo, base)
			}
		}
	}
}

func TestFig12LTCBestOnPersistent(t *testing.T) {
	r := Fig12(tinyScale)
	for _, ds := range []string{"CAIDA-like", "Network-like", "Social-like"} {
		ltcMean := mean(Series(r, ds, "LTC", "precision"))
		// PIE is excluded from the dominance check at tiny scale: its T×
		// memory grant (one full STBF per period) trivializes 60-item
		// periods. The equal-memory adapters are the fair comparison here;
		// the paper-scale run (sigbench -scale paper) restores PIE's
		// pressure.
		for _, algo := range []string{"CM+BF", "CU+BF"} {
			if base := mean(Series(r, ds, algo, "precision")); ltcMean+0.05 < base {
				t.Fatalf("%s: LTC mean precision %.3f below %s %.3f",
					ds, ltcMean, algo, base)
			}
		}
		if pie := mean(Series(r, ds, "PIE", "precision")); pie < 0.3 {
			t.Fatalf("%s: PIE precision %.3f implausibly low at T× memory", ds, pie)
		}
		if ltcMean < 0.7 {
			t.Fatalf("%s: LTC mean precision %.3f implausibly low", ds, ltcMean)
		}
	}
}

func TestFig14LTCBestOnSignificant(t *testing.T) {
	r := Fig14(tinyScale)
	for _, pair := range []string{"1:10", "1:1", "10:1"} {
		ltcMean := mean(Series(r, "Network-like", "LTC "+pair, "precision"))
		for _, algo := range []string{"CM-sig", "CU-sig"} {
			base := mean(Series(r, "Network-like", algo+" "+pair, "precision"))
			if ltcMean+0.05 < base {
				t.Fatalf("pair %s: LTC %.3f below %s %.3f", pair, ltcMean, algo, base)
			}
		}
	}
}

func TestRenderAndCSV(t *testing.T) {
	r := Result{Figure: "x", Title: "demo", PaperNote: "note",
		Rows: []Row{{Figure: "x", Dataset: "D", Series: "S", X: "1",
			Metric: "precision", Value: 0.5}}}
	txt := Render(r)
	if !strings.Contains(txt, "demo") || !strings.Contains(txt, "0.5") {
		t.Fatalf("Render missing content:\n%s", txt)
	}
	csv := CSV(r)
	if !strings.HasPrefix(csv, "figure,dataset,series,x,metric,value\n") {
		t.Fatal("CSV header missing")
	}
	if !strings.Contains(csv, "x,D,S,1,precision,0.5") {
		t.Fatalf("CSV row missing:\n%s", csv)
	}
	if names := SeriesNames(r); len(names) != 1 || names[0] != "S" {
		t.Fatalf("SeriesNames = %v", names)
	}
}

func TestDSweepRuns(t *testing.T) {
	r := DSweep(tinyScale)
	vs := Series(r, "Network-like", "LTC", "precision")
	if len(vs) != 5 {
		t.Fatalf("d sweep returned %d points, want 5", len(vs))
	}
}

func TestPolicySweepShowsEagerDamage(t *testing.T) {
	r := PolicySweep(tinyScale)
	lt := mean(Series(r, "Network-like", "long-tail", "ARE"))
	eager := mean(Series(r, "Network-like", "eager", "ARE"))
	if eager <= lt {
		t.Fatalf("eager ARE %.4f not worse than long-tail %.4f; ablation contrast missing",
			eager, lt)
	}
	ltP := mean(Series(r, "Network-like", "long-tail", "precision"))
	if ltP < 0.5 {
		t.Fatalf("long-tail precision %.2f implausibly low", ltP)
	}
}

func TestEvalTrace(t *testing.T) {
	s := genZipf(30000, 1.1, 3)
	r, err := EvalTrace(s, "frequent", stream.Weights{}, []int{8 << 10}, 50)
	if err != nil {
		t.Fatal(err)
	}
	ltc := mean(Series(r, s.Label, "LTC", "precision"))
	if ltc < 0.6 {
		t.Fatalf("LTC precision %.2f on easy trace", ltc)
	}
	if len(SeriesNames(r)) < 5 {
		t.Fatalf("expected the full frequent line-up, got %v", SeriesNames(r))
	}
	if _, err := EvalTrace(s, "bogus", stream.Weights{}, nil, 10); err == nil {
		t.Fatal("unknown task accepted")
	}
	if _, err := EvalTrace(&stream.Stream{}, "frequent", stream.Weights{}, nil, 10); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestEvalTraceSignificantIncludesAblation(t *testing.T) {
	s := genZipf(20000, 1.0, 4)
	r, err := EvalTrace(s, "significant", stream.Weights{Alpha: 1, Beta: 5},
		[]int{8 << 10}, 50)
	if err != nil {
		t.Fatal(err)
	}
	names := SeriesNames(r)
	found := false
	for _, n := range names {
		if n == "LTC-noLTR" {
			found = true
		}
	}
	if !found {
		t.Fatalf("ablation variant missing from %v", names)
	}
}

func TestFig9dAnd10dShapes(t *testing.T) {
	r := Fig9d(tinyScale)
	for _, algo := range []string{"LTC", "CM", "CU", "Count", "SpaceSaving", "LossyCounting"} {
		vs := Series(r, "Network-like", algo, "precision")
		if len(vs) != 2 { // quick k points: 100 and 1000
			t.Fatalf("%s: %d k-points, want 2", algo, len(vs))
		}
	}
	ltc := Series(r, "Network-like", "LTC", "precision")
	if ltc[len(ltc)-1] < 0.5 {
		t.Fatalf("LTC precision %.2f at k=1000 implausibly low", ltc[len(ltc)-1])
	}
	r10 := Fig10d(tinyScale)
	ltcARE := mean(Series(r10, "Network-like", "LTC", "ARE"))
	cmARE := mean(Series(r10, "Network-like", "CM", "ARE"))
	if ltcARE > cmARE+0.05 {
		t.Fatalf("LTC ARE %.4f above CM %.4f on the k sweep", ltcARE, cmARE)
	}
}

func TestFig13LTCLowestAREPersistent(t *testing.T) {
	r := Fig13(tinyScale)
	for _, ds := range []string{"CAIDA-like", "Network-like", "Social-like"} {
		ltcARE := mean(Series(r, ds, "LTC", "ARE"))
		for _, algo := range []string{"CM+BF", "CU+BF"} {
			if base := mean(Series(r, ds, algo, "ARE")); ltcARE > base+0.05 {
				t.Fatalf("%s: LTC ARE %.4f above %s %.4f", ds, ltcARE, algo, base)
			}
		}
	}
}

func TestFig15LTCLowestARESignificant(t *testing.T) {
	r := Fig15(tinyScale)
	for _, pair := range []string{"1:10", "1:1", "10:1"} {
		ltcARE := mean(Series(r, "CAIDA-like", "LTC "+pair, "ARE"))
		cuARE := mean(Series(r, "CAIDA-like", "CU-sig "+pair, "ARE"))
		if ltcARE > cuARE+0.05 {
			t.Fatalf("pair %s: LTC ARE %.4f above CU-sig %.4f", pair, ltcARE, cuARE)
		}
	}
}

func TestFig8bCoversAllPairs(t *testing.T) {
	r := Fig8b(tinyScale)
	for _, x := range []string{"0:1", "1:10", "1:1", "10:1", "1:0"} {
		found := false
		for _, row := range r.Rows {
			if row.X == x && row.Series == "Y" {
				found = true
			}
		}
		if !found {
			t.Fatalf("pair %s missing from Fig 8b", x)
		}
	}
}

func TestThroughputReportsAllLineups(t *testing.T) {
	r := Throughput(tinyScale)
	names := SeriesNames(r)
	want := []string{"LTC", "SpaceSaving", "PIE", "CM+BF", "CU-sig"}
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Fatalf("throughput missing %s (got %v)", w, names)
		}
	}
	for _, row := range r.Rows {
		if row.Value <= 0 {
			t.Fatalf("%s throughput %.3f not positive", row.Series, row.Value)
		}
	}
}

func TestPipelineSweepReportsBothSeries(t *testing.T) {
	r := PipelineSweep(tinyScale)
	perSeries := map[string]int{}
	for _, row := range r.Rows {
		if row.Metric != "Mops" || row.Value <= 0 {
			t.Fatalf("bad row %+v", row)
		}
		perSeries[row.Series]++
	}
	// 4 shard counts, each measured sync and pipelined.
	if perSeries["sync"] != 4 || perSeries["pipelined"] != 4 {
		t.Fatalf("unexpected series coverage %v", perSeries)
	}
}

func TestPeriodAndZipfSweepsRun(t *testing.T) {
	r := PeriodSweep(tinyScale)
	if len(Series(r, "Network-T100", "LTC", "precision")) != 1 {
		t.Fatalf("period sweep missing T=100 point")
	}
	z := ZipfSweep(tinyScale)
	for _, g := range []string{"Zipf-0.6", "Zipf-0.9", "Zipf-1.2", "Zipf-1.5"} {
		if len(Series(z, g, "LTC", "precision")) != 1 {
			t.Fatalf("zipf sweep missing %s", g)
		}
	}
}

func TestFig12dRuns(t *testing.T) {
	r := Fig12d(tinyScale)
	ltc := Series(r, "Network-like", "LTC", "precision")
	if len(ltc) == 0 {
		t.Fatal("no LTC points")
	}
	if mean(ltc) < 0.5 {
		t.Fatalf("LTC persistent-vs-k precision %.2f implausible", mean(ltc))
	}
}

func TestRunSeedsAggregates(t *testing.T) {
	e, _ := Find("d")
	r := RunSeeds(e, tinyScale, 3)
	if !strings.Contains(r.Title, "mean of 3 seeds") {
		t.Fatalf("title missing seed count: %s", r.Title)
	}
	means := Series(r, "Network-like", "LTC", "precision")
	stds := Series(r, "Network-like", "LTC", "precision±")
	if len(means) != 5 || len(stds) != 5 {
		t.Fatalf("got %d means / %d stds, want 5/5", len(means), len(stds))
	}
	for i, m := range means {
		if m < 0 || m > 1 {
			t.Fatalf("mean %d out of range: %v", i, m)
		}
		if stds[i] < 0 || stds[i] > 0.5 {
			t.Fatalf("std %d implausible: %v", i, stds[i])
		}
	}
}

func TestRunSeedsSingleSeedZeroStd(t *testing.T) {
	e, _ := Find("d")
	r := RunSeeds(e, tinyScale, 1)
	for _, s := range Series(r, "Network-like", "LTC", "precision±") {
		if s != 0 {
			t.Fatalf("single-seed std %v, want 0", s)
		}
	}
}

func TestExtSweepExtensionsBeatAllHistory(t *testing.T) {
	r := ExtSweep(tinyScale)
	full := mean(Series(r, "RegimeShift", "LTC", "recent-precision"))
	win := mean(Series(r, "RegimeShift", "LTC-window", "recent-precision"))
	dec := mean(Series(r, "RegimeShift", "LTC-decay", "recent-precision"))
	if win+0.03 < full {
		t.Fatalf("window %.2f worse than all-history %.2f on regime shift", win, full)
	}
	if dec+0.03 < full {
		t.Fatalf("decay %.2f worse than all-history %.2f on regime shift", dec, full)
	}
	if win < 0.5 && dec < 0.5 {
		t.Fatalf("extensions precision implausibly low: window %.2f decay %.2f", win, dec)
	}
}

func TestFig13dAndPIESweepRun(t *testing.T) {
	r := Fig13d(tinyScale)
	if len(Series(r, "Network-like", "LTC", "ARE")) == 0 {
		t.Fatal("Fig13d produced no LTC points")
	}
	p := PIESweep(tinyScale)
	vs := Series(p, "Network-like", "PIE", "precision")
	if len(vs) != 4 {
		t.Fatalf("PIE sweep returned %d points, want 4", len(vs))
	}
	for i, v := range vs {
		if v < 0 || v > 1 {
			t.Fatalf("point %d out of range: %v", i, v)
		}
	}
}

func TestExtFreqSweepIncludesExtensionBaselines(t *testing.T) {
	r := ExtFreqSweep(tinyScale)
	for _, algo := range []string{"LTC", "MisraGries", "Sampling", "SpaceSaving"} {
		if len(Series(r, "Network-like", algo, "precision")) == 0 {
			t.Fatalf("%s missing from extfreq", algo)
		}
	}
	ltcMean := mean(Series(r, "Network-like", "LTC", "precision"))
	mg := mean(Series(r, "Network-like", "MisraGries", "precision"))
	if ltcMean+0.05 < mg {
		t.Fatalf("LTC %.2f below Misra-Gries %.2f", ltcMean, mg)
	}
}

func TestExpandGroups(t *testing.T) {
	for group, ids := range Groups {
		exps, ok := Expand(group)
		if !ok {
			t.Fatalf("group %s failed to expand", group)
		}
		if len(exps) != len(ids) {
			t.Fatalf("group %s expanded to %d, want %d", group, len(exps), len(ids))
		}
	}
	if exps, ok := Expand("all"); !ok || len(exps) != len(Registry()) {
		t.Fatal("all did not expand to the registry")
	}
	if exps, ok := Expand("9"); !ok || len(exps) != 1 {
		t.Fatal("single figure expansion broken")
	}
	if _, ok := Expand("bogus"); ok {
		t.Fatal("unknown id expanded")
	}
}

func TestDataSweepConfirmsLongTail(t *testing.T) {
	r := DataSweep(tinyScale)
	for _, ds := range []string{"CAIDA-like", "Network-like", "Social-like"} {
		lt := Series(r, ds, "dist", "long-tail")
		if len(lt) != 1 || lt[0] != 1 {
			t.Fatalf("%s not reported long-tailed: %v", ds, lt)
		}
		skew := Series(r, ds, "dist", "zipf-skew")
		if len(skew) != 1 || skew[0] < 0.4 {
			t.Fatalf("%s skew %v implausible", ds, skew)
		}
	}
}
