package metrics

import (
	"math"
	"testing"

	"sigstream/internal/oracle"
	"sigstream/internal/stream"
)

// fixed is a stub tracker returning a canned top-k.
type fixed struct{ entries []stream.Entry }

func (f *fixed) Insert(stream.Item)                     {}
func (f *fixed) EndPeriod()                             {}
func (f *fixed) Query(stream.Item) (stream.Entry, bool) { return stream.Entry{}, false }
func (f *fixed) TopK(k int) []stream.Entry {
	if k > len(f.entries) {
		k = len(f.entries)
	}
	return f.entries[:k]
}
func (f *fixed) MemoryBytes() int { return 0 }
func (f *fixed) Name() string     { return "fixed" }

func buildOracle() *oracle.Oracle {
	o := oracle.New(stream.Frequent)
	// Frequencies: item 1 → 10, item 2 → 5, item 3 → 2, item 4 → 1.
	for i := 0; i < 10; i++ {
		o.Insert(1)
	}
	for i := 0; i < 5; i++ {
		o.Insert(2)
	}
	o.Insert(3)
	o.Insert(3)
	o.Insert(4)
	o.EndPeriod()
	return o
}

func TestPerfectTracker(t *testing.T) {
	o := buildOracle()
	tr := &fixed{entries: []stream.Entry{
		{Item: 1, Significance: 10},
		{Item: 2, Significance: 5},
	}}
	r := Evaluate(o, tr, 2)
	if r.Precision != 1 || r.Recall != 1 {
		t.Fatalf("precision/recall = %v/%v, want 1/1", r.Precision, r.Recall)
	}
	if r.ARE != 0 || r.AAE != 0 {
		t.Fatalf("ARE/AAE = %v/%v, want 0/0", r.ARE, r.AAE)
	}
}

func TestHalfWrongSet(t *testing.T) {
	o := buildOracle()
	tr := &fixed{entries: []stream.Entry{
		{Item: 1, Significance: 10},
		{Item: 3, Significance: 2}, // true top-2 is {1,2}
	}}
	r := Evaluate(o, tr, 2)
	if r.Precision != 0.5 {
		t.Fatalf("precision = %v, want 0.5", r.Precision)
	}
}

func TestAREComputation(t *testing.T) {
	o := buildOracle()
	// Item 1 estimated 8 (true 10, rel err 0.2); item 2 estimated 5 (0).
	tr := &fixed{entries: []stream.Entry{
		{Item: 1, Significance: 8},
		{Item: 2, Significance: 5},
	}}
	r := Evaluate(o, tr, 2)
	if math.Abs(r.ARE-0.1) > 1e-12 {
		t.Fatalf("ARE = %v, want 0.1", r.ARE)
	}
	if math.Abs(r.AAE-1.0) > 1e-12 {
		t.Fatalf("AAE = %v, want 1.0", r.AAE)
	}
}

func TestPhantomItemPenalized(t *testing.T) {
	o := buildOracle()
	// Item 99 never appeared: contributes relative error 1.
	tr := &fixed{entries: []stream.Entry{
		{Item: 1, Significance: 10},
		{Item: 99, Significance: 50},
	}}
	r := Evaluate(o, tr, 2)
	if math.Abs(r.ARE-0.5) > 1e-12 {
		t.Fatalf("ARE = %v, want 0.5 (phantom counts as 1)", r.ARE)
	}
	if r.Precision != 0.5 {
		t.Fatalf("precision = %v, want 0.5", r.Precision)
	}
}

func TestShortReportedSet(t *testing.T) {
	// A tracker reporting fewer than k items is penalized in precision
	// (divide by k, not by |ψ|).
	o := buildOracle()
	tr := &fixed{entries: []stream.Entry{{Item: 1, Significance: 10}}}
	r := Evaluate(o, tr, 4)
	if r.Precision != 0.25 {
		t.Fatalf("precision = %v, want 0.25", r.Precision)
	}
}

func TestZeroK(t *testing.T) {
	o := buildOracle()
	tr := &fixed{}
	r := Evaluate(o, tr, 0)
	if r.Precision != 0 || r.ARE != 0 {
		t.Fatalf("k=0 must yield zero report, got %+v", r)
	}
}
