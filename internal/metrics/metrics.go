// Package metrics implements the paper's evaluation metrics (§V-A):
// Precision over the reported top-k set and ARE (average relative error)
// of the reported significances, plus AAE and recall for completeness.
package metrics

import (
	"sigstream/internal/oracle"
	"sigstream/internal/stream"
)

// Report bundles the scores of one tracker on one workload.
type Report struct {
	Precision float64 // |φ∩ψ| / k
	Recall    float64 // |φ∩ψ| / |φ| (== precision when both sets have size k)
	ARE       float64 // (1/k)·Σ |s_i − ŝ_i| / s_i over the reported set
	AAE       float64 // (1/k)·Σ |s_i − ŝ_i| over the reported set
}

// Evaluate scores tracker t against the exact oracle o for top-k queries.
//
// Following the paper: φ is the correct top-k significant set, ψ the
// reported set; precision = |φ∩ψ|/k. ARE averages |s_i−ŝ_i|/s_i over the
// reported items, where s_i is the item's real significance. Reported items
// that never appeared (s_i = 0) contribute their full estimate as relative
// error 1 per unit, guarded to avoid division by zero.
func Evaluate(o *oracle.Oracle, t stream.Tracker, k int) Report {
	truth := o.TopK(k)
	reported := t.TopK(k)
	return Score(o, truth, reported, k)
}

// Score computes the metrics from an explicit truth set and reported set.
func Score(o *oracle.Oracle, truth, reported []stream.Entry, k int) Report {
	truthSet := make(map[stream.Item]struct{}, len(truth))
	for _, e := range truth {
		truthSet[e.Item] = struct{}{}
	}
	hits := 0
	var sumRel, sumAbs float64
	for _, r := range reported {
		if _, ok := truthSet[r.Item]; ok {
			hits++
		}
		real, found := o.Query(r.Item)
		var s float64
		if found {
			s = real.Significance
		}
		diff := s - r.Significance
		if diff < 0 {
			diff = -diff
		}
		sumAbs += diff
		if s > 0 {
			sumRel += diff / s
		} else if r.Significance > 0 {
			// Reported a phantom item: count it as 100% relative error.
			sumRel += 1
		}
	}
	rep := Report{}
	if k > 0 {
		rep.Precision = float64(hits) / float64(k)
		rep.ARE = sumRel / float64(k)
		rep.AAE = sumAbs / float64(k)
	}
	if len(truth) > 0 {
		rep.Recall = float64(hits) / float64(len(truth))
	}
	return rep
}
