// Package trackertest is a conformance suite for stream.Tracker
// implementations: every algorithm in this repository — and any a
// downstream user adds — must satisfy the same behavioural contract. Call
// Run with a factory in each implementation's tests.
package trackertest

import (
	"math/rand"
	"testing"

	"sigstream/internal/stream"
)

// Factory builds a fresh tracker with roughly the given memory budget.
type Factory func(memoryBytes int) stream.Tracker

// Options tunes the suite for implementation-specific semantics.
type Options struct {
	// FrequencyOnly marks trackers that do not count persistency
	// (Space-Saving, Lossy Counting, Misra-Gries, frequency sketches);
	// persistency-specific checks are skipped.
	FrequencyOnly bool
	// PersistencyOnly marks trackers that do not count frequency (PIE,
	// persistency adapters); frequency-specific checks are skipped.
	PersistencyOnly bool
	// MinPeriods is the number of periods an item must span before the
	// tracker can report it (PIE's decode threshold). The suite feeds at
	// least this many periods before asserting visibility.
	MinPeriods int
	// Lossy marks trackers that may drop items under pressure even at the
	// suite's modest scale (the sampling baseline); presence checks are
	// then skipped.
	Lossy bool
}

// Run executes the contract checks against trackers built by f.
func Run(t *testing.T, f Factory, opts Options) {
	t.Helper()
	periods := opts.MinPeriods
	if periods < 6 {
		periods = 6
	}

	t.Run("FreshTrackerIsEmpty", func(t *testing.T) {
		tr := f(16 << 10)
		if _, ok := tr.Query(12345); ok {
			t.Fatal("fresh tracker reports a tracked item")
		}
		if got := tr.TopK(10); len(got) != 0 {
			t.Fatalf("fresh tracker TopK returned %d entries", len(got))
		}
	})

	t.Run("NameAndMemory", func(t *testing.T) {
		tr := f(16 << 10)
		if tr.Name() == "" {
			t.Fatal("empty Name")
		}
		if tr.MemoryBytes() <= 0 {
			t.Fatal("non-positive MemoryBytes")
		}
	})

	t.Run("NonPositiveKIsEmpty", func(t *testing.T) {
		tr := f(16 << 10)
		tr.Insert(1)
		tr.EndPeriod()
		if len(tr.TopK(0)) != 0 || len(tr.TopK(-5)) != 0 {
			t.Fatal("TopK with k ≤ 0 returned entries")
		}
	})

	t.Run("EndPeriodBeforeAnyInsert", func(t *testing.T) {
		tr := f(16 << 10)
		tr.EndPeriod()
		tr.EndPeriod()
		tr.Insert(7)
		tr.EndPeriod()
		if opts.Lossy {
			return
		}
		if periods > 3 {
			return // below the visibility threshold; covered elsewhere
		}
		if _, ok := tr.Query(7); !ok {
			t.Fatal("item lost after leading empty periods")
		}
	})

	t.Run("TopKSortedAndBounded", func(t *testing.T) {
		tr := f(64 << 10)
		rng := rand.New(rand.NewSource(1))
		for p := 0; p < periods; p++ {
			for i := 0; i < 300; i++ {
				tr.Insert(stream.Item(rng.Intn(40) + 1))
			}
			tr.EndPeriod()
		}
		top := tr.TopK(10)
		if len(top) > 10 {
			t.Fatalf("TopK(10) returned %d entries", len(top))
		}
		for i := 1; i < len(top); i++ {
			if top[i].Significance > top[i-1].Significance {
				t.Fatal("TopK not sorted by significance")
			}
		}
	})

	t.Run("QueryConsistentWithTopK", func(t *testing.T) {
		tr := f(64 << 10)
		for p := 0; p < periods; p++ {
			for i := 0; i < 200; i++ {
				tr.Insert(stream.Item(i%20 + 1))
			}
			tr.EndPeriod()
		}
		for _, e := range tr.TopK(5) {
			got, ok := tr.Query(e.Item)
			if !ok {
				t.Fatalf("TopK item %d not queryable", e.Item)
			}
			if got.Significance != e.Significance {
				t.Fatalf("item %d: Query significance %v != TopK %v",
					e.Item, got.Significance, e.Significance)
			}
		}
	})

	t.Run("HotItemVisible", func(t *testing.T) {
		if opts.Lossy {
			t.Skip("lossy tracker: presence not guaranteed")
		}
		tr := f(64 << 10)
		for p := 0; p < periods; p++ {
			for i := 0; i < 50; i++ {
				tr.Insert(777)
			}
			tr.EndPeriod()
		}
		e, ok := tr.Query(777)
		if !ok {
			t.Fatal("uncontended hot item not tracked")
		}
		if !opts.PersistencyOnly && e.Frequency == 0 {
			t.Fatal("hot item frequency 0")
		}
		if !opts.FrequencyOnly && e.Persistency == 0 {
			t.Fatal("hot item persistency 0")
		}
		if !opts.FrequencyOnly && e.Persistency > uint64(periods) {
			t.Fatalf("persistency %d exceeds %d periods", e.Persistency, periods)
		}
	})

	t.Run("SurvivesPressure", func(t *testing.T) {
		// A tiny budget with a huge universe must not panic or corrupt.
		tr := f(256)
		rng := rand.New(rand.NewSource(2))
		for p := 0; p < periods; p++ {
			for i := 0; i < 500; i++ {
				tr.Insert(stream.Item(rng.Intn(5000)))
			}
			tr.EndPeriod()
		}
		top := tr.TopK(100)
		for i := 1; i < len(top); i++ {
			if top[i].Significance > top[i-1].Significance {
				t.Fatal("TopK unsorted under pressure")
			}
		}
	})
}
