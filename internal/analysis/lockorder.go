package analysis

// lockorder builds the module's mutex-acquisition graph and checks it
// against declared orderings. A node is one mutex field of a named struct
// type; an edge A → B records that B was acquired somewhere while A was
// held, either directly at a Lock call or transitively through a callee
// that may acquire B. Deadlock by lock inversion needs two goroutines
// nesting the same pair of locks in opposite orders, so the analyzer
// demands that nesting be intentional:
//
//   - A struct with two or more mutex fields must declare their order in
//     its doc comment: //sig:lockorder mu < walMu < keysMu. Several lines
//     may declare independent chains; together they must name every
//     mutex field of the struct.
//   - Every observed intra-struct edge must be consistent with the
//     declared (transitively closed) order; an edge against it, or
//     between an undeclared pair, is a finding.
//   - The whole graph — including cross-type edges, which no annotation
//     covers — must be acyclic. A cycle is the inversion itself.
//   - Re-acquiring a mutex field that is already held is reported
//     (sync.Mutex is not reentrant).
//
// RLock and Lock count the same: read/write flavors of the same mutex
// still invert. The graph is typed, not instance-aware: acquiring the
// same field of two *different* instances (a registry spilling a victim
// tenant while another tenant's method runs) would look like a self-edge,
// so transitive self-edges are dropped silently — only a *direct* nested
// re-lock in one function body is reported. That trades instance-level
// self-deadlock detection for zero false positives on sharded code.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

const lockOrderName = "lockorder"

var LockOrder = &Analyzer{
	Name: lockOrderName,
	Doc:  "mutex nesting follows declared //sig:lockorder orderings and the acquisition graph is acyclic",
	Run:  runLockOrder,
}

// lockOrderPrefix introduces an ordering declaration on a struct.
const lockOrderPrefix = "sig:lockorder"

// lockNode identifies one mutex: a field of a named struct type.
type lockNode struct {
	typ   string // qualified type: "pkg/path.TypeName"
	field string
}

func (n lockNode) key() string { return n.typ + "." + n.field }

// short renders the node as TypeName.field for messages.
func (n lockNode) short() string {
	typ := n.typ
	if i := strings.LastIndexByte(typ, '/'); i >= 0 {
		typ = typ[i+1:]
	}
	return typ + "." + n.field
}

// lockEdge records one observation "to was acquired while from was held".
type lockEdge struct {
	from, to lockNode
	pos      token.Position
	direct   bool // acquired at a Lock call in the same function body
}

// lockStruct is one struct type declaring mutex fields, with its parsed
// //sig:lockorder annotations.
type lockStruct struct {
	typ     string
	pos     token.Position
	fields  []string
	fieldOK map[string]bool
	// before holds the declared pairs, transitively closed:
	// before[a][b] means a must be acquired before b.
	before  map[string]map[string]bool
	covered map[string]bool
}

func runLockOrder(p *Program) []Finding {
	structs, out := collectLockStructs(p)
	decls := moduleFuncs(p)
	sums := lockSummaries(p, decls)
	edges := collectLockEdges(p, sums, &out)
	edges = dedupeEdges(edges)

	// Intra-struct edges against (or absent from) the declared order.
	cyclic := make([]lockEdge, 0, len(edges))
	for _, e := range edges {
		if e.from.typ == e.to.typ && e.from.field != e.to.field {
			ls := structs[e.from.typ]
			switch {
			case ls == nil:
				// A struct the collector did not see (shouldn't happen: two
				// fields of one type imply the type was collected); keep the
				// edge for cycle detection.
			case ls.before[e.to.field][e.from.field]:
				out = append(out, Finding{
					Analyzer: lockOrderName,
					Pos:      e.pos,
					Message: fmt.Sprintf("%s acquired while %s is held, against the declared //sig:lockorder %s < %s",
						e.to.short(), e.from.short(), e.to.field, e.from.field),
				})
				continue // a reported inversion does not also feed cycle detection
			case !ls.before[e.from.field][e.to.field]:
				out = append(out, Finding{
					Analyzer: lockOrderName,
					Pos:      e.pos,
					Message: fmt.Sprintf("acquisition order %s before %s is not declared by //sig:lockorder on %s",
						e.from.field, e.to.field, e.from.short()[:strings.IndexByte(e.from.short(), '.')]),
				})
				continue
			}
		}
		cyclic = append(cyclic, e)
	}

	out = append(out, lockCycles(cyclic)...)
	return out
}

// collectLockStructs finds every struct type with mutex fields and parses
// its //sig:lockorder declarations, reporting malformed or missing ones.
func collectLockStructs(p *Program) (map[string]*lockStruct, []Finding) {
	structs := map[string]*lockStruct{}
	var out []Finding
	for _, pkg := range p.Packages {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					ls := &lockStruct{
						typ:     pkg.Path + "." + ts.Name.Name,
						pos:     p.Fset.Position(ts.Pos()),
						fieldOK: map[string]bool{},
						before:  map[string]map[string]bool{},
						covered: map[string]bool{},
					}
					for _, f := range st.Fields.List {
						if !isMutexType(pkg, f.Type) {
							continue
						}
						for _, name := range f.Names {
							ls.fields = append(ls.fields, name.Name)
							ls.fieldOK[name.Name] = true
						}
					}
					out = append(out, parseLockOrder(p, pkg, gd, ts, ls)...)
					if len(ls.fields) == 0 {
						continue
					}
					structs[ls.typ] = ls
					if len(ls.fields) >= 2 {
						var missing []string
						for _, f := range ls.fields {
							if !ls.covered[f] {
								missing = append(missing, f)
							}
						}
						if len(missing) == len(ls.fields) {
							out = append(out, Finding{
								Analyzer: lockOrderName,
								Pos:      ls.pos,
								Message: fmt.Sprintf("struct %s has %d mutex fields and no //sig:lockorder declaration",
									ts.Name.Name, len(ls.fields)),
							})
						} else if len(missing) > 0 {
							out = append(out, Finding{
								Analyzer: lockOrderName,
								Pos:      ls.pos,
								Message: fmt.Sprintf("//sig:lockorder on %s does not order mutex field(s) %s",
									ts.Name.Name, strings.Join(missing, ", ")),
							})
						}
					}
				}
			}
		}
	}
	return structs, out
}

// parseLockOrder reads every //sig:lockorder line attached to the type
// declaration, fills ls.before with the transitive closure of the chains,
// and reports unknown fields and contradictory declarations.
func parseLockOrder(p *Program, pkg *Package, gd *ast.GenDecl, ts *ast.TypeSpec, ls *lockStruct) []Finding {
	var out []Finding
	name := ts.Name.Name
	for _, doc := range []*ast.CommentGroup{gd.Doc, ts.Doc, ts.Comment} {
		if doc == nil {
			continue
		}
		for _, c := range doc.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, lockOrderPrefix) {
				continue
			}
			pos := p.Fset.Position(c.Pos())
			chain := strings.TrimSpace(strings.TrimPrefix(text, lockOrderPrefix))
			if chain == "" {
				out = append(out, Finding{
					Analyzer: lockOrderName,
					Pos:      pos,
					Message:  "//sig:lockorder requires a chain of mutex fields: a < b < c",
				})
				continue
			}
			var fields []string
			bad := false
			for _, part := range strings.Split(chain, "<") {
				f := strings.TrimSpace(part)
				if !ls.fieldOK[f] {
					out = append(out, Finding{
						Analyzer: lockOrderName,
						Pos:      pos,
						Message:  fmt.Sprintf("//sig:lockorder names %q, which is not a mutex field of %s", f, name),
					})
					bad = true
					continue
				}
				fields = append(fields, f)
				ls.covered[f] = true
			}
			if bad || len(fields) < 2 {
				continue
			}
			for i := 0; i < len(fields); i++ {
				for j := i + 1; j < len(fields); j++ {
					a, b := fields[i], fields[j]
					if ls.before[b][a] {
						out = append(out, Finding{
							Analyzer: lockOrderName,
							Pos:      pos,
							Message: fmt.Sprintf("//sig:lockorder on %s declares both %s < %s and the reverse",
								name, a, b),
						})
						continue
					}
					if ls.before[a] == nil {
						ls.before[a] = map[string]bool{}
					}
					ls.before[a][b] = true
				}
			}
		}
	}
	// Transitive closure across chains: mu < walMu plus walMu < keysMu
	// implies mu < keysMu even if no single line says so.
	for changed := true; changed; {
		changed = false
		for a, bs := range ls.before {
			for b := range bs {
				for c := range ls.before[b] {
					if !ls.before[a][c] {
						ls.before[a][c] = true
						changed = true
					}
				}
			}
		}
	}
	return out
}

// isMutexType reports whether the field type is sync.Mutex or sync.RWMutex.
func isMutexType(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// resolveLockCall classifies a call as a lock-field acquisition or
// release: x.mu.Lock() → (node for x's type's mu field, +1). Calls on
// mutexes that are not struct fields have no node and are ignored here
// (lockblock still tracks their depth).
func resolveLockCall(pkg *Package, call *ast.CallExpr) (lockNode, int, bool) {
	delta := lockDelta(pkg, call)
	if delta == 0 {
		return lockNode{}, 0, false
	}
	sel := call.Fun.(*ast.SelectorExpr) // lockDelta established the shape
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return lockNode{}, 0, false
	}
	tv, ok := pkg.Info.Types[inner.X]
	if !ok || tv.Type == nil {
		return lockNode{}, 0, false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return lockNode{}, 0, false
	}
	node := lockNode{
		typ:   named.Obj().Pkg().Path() + "." + named.Obj().Name(),
		field: inner.Sel.Name,
	}
	return node, delta, true
}

// lockSummaries computes, for every module function, the set of lock
// nodes it may acquire directly or through module callees (a fixpoint
// over the call graph). Goroutines spawned by a function are excluded:
// their acquisitions do not nest inside the caller's held set.
func lockSummaries(p *Program, decls map[*types.Func]declSite) map[*types.Func]map[lockNode]bool {
	type facts struct {
		acquires map[lockNode]bool
		callees  map[*types.Func]bool
	}
	all := map[*types.Func]*facts{}
	for fn, ds := range decls {
		f := &facts{acquires: map[lockNode]bool{}, callees: map[*types.Func]bool{}}
		ast.Inspect(ds.decl.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.GoStmt:
				return false
			case *ast.CallExpr:
				if node, delta, ok := resolveLockCall(ds.pkg, x); ok {
					if delta > 0 {
						f.acquires[node] = true
					}
					return true
				}
				if callee := calleeOf(ds.pkg, x); callee != nil {
					f.callees[callee] = true
				}
			}
			return true
		})
		all[fn] = f
	}

	sums := map[*types.Func]map[lockNode]bool{}
	for fn, f := range all {
		s := map[lockNode]bool{}
		for n := range f.acquires {
			s[n] = true
		}
		sums[fn] = s
	}
	for changed := true; changed; {
		changed = false
		for fn, f := range all {
			s := sums[fn]
			for callee := range f.callees {
				for n := range sums[callee] {
					if !s[n] {
						s[n] = true
						changed = true
					}
				}
			}
		}
	}
	return sums
}

// collectLockEdges walks every function body with a held-set tracker and
// records acquisition edges; direct nested re-locks are reported through
// out.
func collectLockEdges(p *Program, sums map[*types.Func]map[lockNode]bool, out *[]Finding) []lockEdge {
	var edges []lockEdge
	for _, pkg := range p.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch fn := n.(type) {
				case *ast.FuncDecl:
					if fn.Body != nil {
						w := &orderWalker{prog: p, pkg: pkg, sums: sums, edges: &edges, out: out}
						w.block(fn.Body, nil)
					}
					return false
				case *ast.FuncLit:
					w := &orderWalker{prog: p, pkg: pkg, sums: sums, edges: &edges, out: out}
					w.block(fn.Body, nil)
					return false
				}
				return true
			})
		}
	}
	return edges
}

// orderWalker threads the set of held lock nodes through one function
// body, branch-locally, mirroring lockblock's traversal semantics.
type orderWalker struct {
	prog  *Program
	pkg   *Package
	sums  map[*types.Func]map[lockNode]bool
	edges *[]lockEdge
	out   *[]Finding
}

// block walks a statement list; nested blocks see a copy of the held
// stack so their changes stay branch-local.
func (w *orderWalker) block(b *ast.BlockStmt, held []lockNode) []lockNode {
	for _, s := range b.List {
		held = w.stmt(s, held)
	}
	return held
}

func (w *orderWalker) branch(b *ast.BlockStmt, held []lockNode) {
	w.block(b, append([]lockNode(nil), held...))
}

func (w *orderWalker) stmt(s ast.Stmt, held []lockNode) []lockNode {
	switch x := s.(type) {
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			if node, delta, ok := resolveLockCall(w.pkg, call); ok {
				if delta > 0 {
					return w.acquire(node, call.Pos(), held)
				}
				return release(node, held)
			}
		}
		w.exprs(x.X, held)
	case *ast.DeferStmt:
		// A deferred unlock runs at return: the body stays held. Any other
		// deferred call is approximated as running under the current set.
		if node, delta, ok := resolveLockCall(w.pkg, x.Call); ok {
			if delta > 0 {
				return w.acquire(node, x.Call.Pos(), held)
			}
			return held
		}
		w.exprs(x.Call, held)
	case *ast.GoStmt:
		// The goroutine does not inherit the caller's held set.
		if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
			w.branch(lit.Body, nil)
		}
		for _, arg := range x.Call.Args {
			w.exprs(arg, held)
		}
	case *ast.AssignStmt:
		for _, e := range x.Rhs {
			w.exprs(e, held)
		}
		for _, e := range x.Lhs {
			w.exprs(e, held)
		}
	case *ast.DeclStmt, *ast.ReturnStmt, *ast.IncDecStmt, *ast.SendStmt:
		ast.Inspect(s, w.exprVisitor(held))
	case *ast.BlockStmt:
		w.branch(x, held)
	case *ast.IfStmt:
		if x.Init != nil {
			held = w.stmt(x.Init, held)
		}
		w.exprs(x.Cond, held)
		w.branch(x.Body, held)
		if x.Else != nil {
			w.stmt(x.Else, append([]lockNode(nil), held...))
		}
	case *ast.ForStmt:
		if x.Init != nil {
			held = w.stmt(x.Init, held)
		}
		if x.Cond != nil {
			w.exprs(x.Cond, held)
		}
		w.branch(x.Body, held)
	case *ast.RangeStmt:
		w.exprs(x.X, held)
		w.branch(x.Body, held)
	case *ast.SwitchStmt:
		if x.Init != nil {
			held = w.stmt(x.Init, held)
		}
		if x.Tag != nil {
			w.exprs(x.Tag, held)
		}
		for _, c := range x.Body.List {
			cc := c.(*ast.CaseClause)
			branch := append([]lockNode(nil), held...)
			for _, s := range cc.Body {
				branch = w.stmt(s, branch)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range x.Body.List {
			cc := c.(*ast.CaseClause)
			branch := append([]lockNode(nil), held...)
			for _, s := range cc.Body {
				branch = w.stmt(s, branch)
			}
		}
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			cc := c.(*ast.CommClause)
			branch := append([]lockNode(nil), held...)
			for _, s := range cc.Body {
				branch = w.stmt(s, branch)
			}
		}
	case *ast.LabeledStmt:
		return w.stmt(x.Stmt, held)
	}
	return held
}

// acquire records edges from every held node to the new one and reports
// a direct re-lock of an already-held field.
func (w *orderWalker) acquire(node lockNode, pos token.Pos, held []lockNode) []lockNode {
	p := w.prog.Fset.Position(pos)
	for _, h := range held {
		if h == node {
			*w.out = append(*w.out, Finding{
				Analyzer: lockOrderName,
				Pos:      p,
				Message:  fmt.Sprintf("%s acquired while already held (sync mutexes are not reentrant)", node.short()),
			})
			continue
		}
		*w.edges = append(*w.edges, lockEdge{from: h, to: node, pos: p, direct: true})
	}
	return append(held, node)
}

// release drops the most recent occurrence of node from the held stack.
func release(node lockNode, held []lockNode) []lockNode {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i] == node {
			return append(held[:i:i], held[i+1:]...)
		}
	}
	return held
}

// exprs scans an expression for calls whose callees may acquire locks,
// emitting transitive edges; nested function literals run on their own
// schedule and get a fresh (empty) held set.
func (w *orderWalker) exprs(e ast.Expr, held []lockNode) {
	ast.Inspect(e, w.exprVisitor(held))
}

func (w *orderWalker) exprVisitor(held []lockNode) func(ast.Node) bool {
	return func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			ow := &orderWalker{prog: w.prog, pkg: w.pkg, sums: w.sums, edges: w.edges, out: w.out}
			ow.block(x.Body, nil)
			return false
		case *ast.CallExpr:
			if len(held) == 0 {
				return true
			}
			if _, _, ok := resolveLockCall(w.pkg, x); ok {
				return true // lock/unlock statements are handled by stmt
			}
			callee := calleeOf(w.pkg, x)
			if callee == nil {
				return true
			}
			sum := w.sums[callee]
			if len(sum) == 0 {
				return true
			}
			pos := w.prog.Fset.Position(x.Pos())
			nodes := make([]lockNode, 0, len(sum))
			for n := range sum {
				nodes = append(nodes, n)
			}
			sort.Slice(nodes, func(i, j int) bool { return nodes[i].key() < nodes[j].key() })
			for _, h := range held {
				for _, a := range nodes {
					if a == h {
						// Transitive self-edge: almost always a different
						// instance of the same type (registry spilling a
						// victim tenant); dropped by design.
						continue
					}
					*w.edges = append(*w.edges, lockEdge{from: h, to: a, pos: pos})
				}
			}
		}
		return true
	}
}

// dedupeEdges keeps one representative edge per (from, to) pair,
// preferring direct observations and earlier positions.
func dedupeEdges(edges []lockEdge) []lockEdge {
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.direct != b.direct {
			return a.direct
		}
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		return a.pos.Line < b.pos.Line
	})
	seen := map[[2]string]bool{}
	var out []lockEdge
	for _, e := range edges {
		k := [2]string{e.from.key(), e.to.key()}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.from.key() != b.from.key() {
			return a.from.key() < b.from.key()
		}
		return a.to.key() < b.to.key()
	})
	return out
}

// lockCycles reports one finding per cycle in the acquisition graph.
func lockCycles(edges []lockEdge) []Finding {
	adj := map[string][]lockEdge{}
	for _, e := range edges {
		adj[e.from.key()] = append(adj[e.from.key()], e)
	}
	nodes := make([]string, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	var out []Finding
	reported := map[string]bool{}
	const (
		unvisited = iota
		onStack
		done
	)
	state := map[string]int{}
	var stack []lockEdge
	var visit func(n string)
	visit = func(n string) {
		state[n] = onStack
		for _, e := range adj[n] {
			to := e.to.key()
			switch state[to] {
			case onStack:
				// Unwind the stack back to `to` to extract the cycle path.
				cycle := []lockEdge{e}
				for i := len(stack) - 1; i >= 0; i-- {
					cycle = append([]lockEdge{stack[i]}, cycle...)
					if stack[i].from.key() == to {
						break
					}
				}
				key := cycleKey(cycle)
				if !reported[key] {
					reported[key] = true
					out = append(out, Finding{
						Analyzer: lockOrderName,
						Pos:      cycle[0].pos,
						Message:  "lock-order cycle: " + cyclePath(cycle),
					})
				}
			case unvisited:
				stack = append(stack, e)
				visit(to)
				stack = stack[:len(stack)-1]
			}
		}
		state[n] = done
	}
	for _, n := range nodes {
		if state[n] == unvisited {
			visit(n)
		}
	}
	return out
}

// cycleKey canonicalizes a cycle for dedup regardless of entry point.
func cycleKey(cycle []lockEdge) string {
	keys := make([]string, len(cycle))
	for i, e := range cycle {
		keys[i] = e.from.key() + ">" + e.to.key()
	}
	sort.Strings(keys)
	return strings.Join(keys, "|")
}

// cyclePath renders the cycle as A -> B -> A with acquisition sites.
func cyclePath(cycle []lockEdge) string {
	var b strings.Builder
	for i, e := range cycle {
		if i == 0 {
			b.WriteString(e.from.short())
		}
		fmt.Fprintf(&b, " -> %s (%s:%d)", e.to.short(), shortFile(e.pos.Filename), e.pos.Line)
	}
	return b.String()
}

// shortFile trims a path to its final two elements for readability.
func shortFile(path string) string {
	parts := strings.Split(path, "/")
	if len(parts) <= 2 {
		return path
	}
	return strings.Join(parts[len(parts)-2:], "/")
}
