package analysis

// goleak demands that every goroutine the module spawns can be shown to
// stop. A `go` statement passes when the spawned body — a function
// literal, or the module function the call resolves to — exhibits a
// termination signal:
//
//   - it receives from a channel (<-ch, <-ctx.Done(), a select with a
//     receive case, or ranging over a channel), the done-channel and
//     supervisor-loop patterns;
//   - it calls sync.WaitGroup.Done, the tracked-worker pattern (a leak
//     would deadlock the owner's Wait);
//   - it contains no loop at all, so it ends when its calls return
//     (listener wrappers like `go func() { errc <- srv.Serve(ln) }()`);
//   - failing those, some module function it calls has a receive or a
//     Done — one hop of indirection for bodies that delegate their loop.
//
// A goroutine that is genuinely meant to run for the process lifetime is
// declared, not silenced: `//sig:daemon <reason>` on the go statement's
// line or the line above. The reason is mandatory — a bare //sig:daemon
// is itself reported.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

const goLeakName = "goleak"

var GoLeak = &Analyzer{
	Name: goLeakName,
	Doc:  "every go statement reaches a termination signal (channel receive, WaitGroup.Done) or declares //sig:daemon",
	Run:  runGoLeak,
}

// daemonPrefix introduces a process-lifetime goroutine declaration.
const daemonPrefix = "sig:daemon"

func runGoLeak(p *Program) []Finding {
	var out []Finding
	decls := moduleFuncs(p)
	daemons := collectDaemons(p, &out)
	for _, pkg := range p.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				pos := p.Fset.Position(g.Pos())
				if daemons[pos.Filename][pos.Line] {
					return true
				}
				body, bodyPkg := spawnBody(pkg, g, decls)
				switch {
				case body == nil:
					out = append(out, Finding{
						Analyzer: goLeakName,
						Pos:      pos,
						Message:  "goroutine target cannot be resolved to a module function; spawn a literal or declare //sig:daemon <reason>",
					})
				case !goroutineTerminates(bodyPkg, body, decls):
					out = append(out, Finding{
						Analyzer: goLeakName,
						Pos:      pos,
						Message:  "goroutine has no provable termination signal (channel receive, WaitGroup.Done, or //sig:daemon <reason>)",
					})
				}
				return true
			})
		}
	}
	return out
}

// collectDaemons indexes //sig:daemon comments by file and covered line
// (the comment's own line and the next), reporting reasonless ones.
func collectDaemons(p *Program, out *[]Finding) map[string]map[int]bool {
	daemons := map[string]map[int]bool{}
	for _, pkg := range p.Packages {
		for _, file := range pkg.Files {
			for _, group := range file.Comments {
				for _, c := range group.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, daemonPrefix) {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					reason := strings.TrimSpace(strings.TrimPrefix(text, daemonPrefix))
					if reason == "" {
						*out = append(*out, Finding{
							Analyzer: goLeakName,
							Pos:      pos,
							Message:  "//sig:daemon requires a reason",
						})
						continue
					}
					lines := daemons[pos.Filename]
					if lines == nil {
						lines = map[int]bool{}
						daemons[pos.Filename] = lines
					}
					lines[pos.Line] = true
					lines[pos.Line+1] = true
				}
			}
		}
	}
	return daemons
}

// spawnBody resolves the body a go statement runs: the literal itself, or
// the declaration of the module function it calls.
func spawnBody(pkg *Package, g *ast.GoStmt, decls map[*types.Func]declSite) (*ast.BlockStmt, *Package) {
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		return lit.Body, pkg
	}
	if fn := calleeOf(pkg, g.Call); fn != nil {
		if ds, ok := decls[fn]; ok {
			return ds.decl.Body, ds.pkg
		}
	}
	return nil, nil
}

// goroutineTerminates applies the termination rules to a spawned body.
func goroutineTerminates(pkg *Package, body *ast.BlockStmt, decls map[*types.Func]declSite) bool {
	if hasTerminationSignal(pkg, body) || !hasLoop(body) {
		return true
	}
	// One hop: a body that delegates its loop or its signal to a helper.
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if fn := calleeOf(pkg, x); fn != nil {
				if ds, ok := decls[fn]; ok && hasTerminationSignal(ds.pkg, ds.decl.Body) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// hasTerminationSignal scans one body (not nested literals or spawned
// goroutines) for a channel receive, a range over a channel, or a
// WaitGroup.Done call.
func hasTerminationSignal(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
				return false
			}
		case *ast.RangeStmt:
			if isChannel(pkg, x.X) {
				found = true
				return false
			}
		case *ast.CallExpr:
			if isWaitGroupDone(pkg, x) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// hasLoop reports whether the body itself loops (nested literals and
// spawned goroutines loop on their own account).
func hasLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			found = true
			return false
		}
		return true
	})
	return found
}

// isWaitGroupDone reports whether call is sync.WaitGroup.Done.
func isWaitGroupDone(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "Done" || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && recvNamed(sig) == "WaitGroup"
}
