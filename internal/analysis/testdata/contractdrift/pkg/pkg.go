// Package pkg exercises contractdrift: metric registrations, wire
// magics, a route table and error codes, each with one drift seeded
// against README.md.
package pkg

// Label mirrors the shape of the real obs label type.
type Label struct{ K, V string }

// Writer mimics the registration surface; contractdrift matches the
// Counter/Gauge/Histogram method names, not the package they live in.
type Writer struct{}

func (w *Writer) Counter(name, help string, v float64, labels ...Label) {}

func (w *Writer) Gauge(name, help string, v float64, labels ...Label) {}

func (w *Writer) Histogram(name, help string, bounds []float64, counts []uint64, sum float64, labels ...Label) {
}

const (
	// FrameMagic is documented in README.md.
	FrameMagic = "FKE1"
	// orphanMagic is not documented anywhere.
	orphanMagic = "FKE9" // want "not documented"
)

// Route mirrors the server's route-table row type.
type Route struct {
	Method  string
	Pattern string
}

var routeTable = []Route{ // want "route GET /v1/undocumented is not documented"
	{Method: "GET", Pattern: "/v1/ok"},
	{Method: "GET", Pattern: "/v1/undocumented"},
}

// ErrorCodes maps HTTP statuses to envelope code strings; the teapot
// row is missing from README's table.
var ErrorCodes = map[int]string{ // want "error code 418 teapot is not documented"
	400: "bad_request",
	418: "teapot",
}

// Collect registers one documented counter, one undocumented counter, a
// histogram documented through its _bucket series, and a gauge covered
// by a prefix wildcard.
func Collect(w *Writer) {
	w.Counter("sigstream_good_total", "documented", 1)
	w.Counter("sigstream_missing_total", "undocumented", 1) // want "not documented"
	w.Histogram("sigstream_lat_seconds", "documented via _bucket", nil, nil, 0)
	w.Gauge("sigstream_covered_by_glob", "documented via prefix", 1)
	use(orphanMagic)
}

func use(string) {}
