// Package counter seeds mixedatomic violations: the n field is touched
// both through sync/atomic and with plain loads/stores.
package counter

import "sync/atomic"

type Counter struct {
	n    uint64
	hits uint64
}

func (c *Counter) IncAtomic() {
	atomic.AddUint64(&c.n, 1)
}

func (c *Counter) LoadAtomic() uint64 {
	return atomic.LoadUint64(&c.n)
}

func (c *Counter) IncPlain() {
	c.n++ // want "accessed via sync/atomic"
}

func (c *Counter) ReadPlain() uint64 {
	return c.n // want "accessed via sync/atomic"
}

// hits is never touched atomically, so plain access is fine.
func (c *Counter) Hit() uint64 {
	c.hits++
	return c.hits
}
