package pkg

import (
	"context"
	"sync"
)

func work() {}

func busy() bool { return false }

// A straight-line body ends when its calls return.
func SpawnStraight() {
	go func() { work() }()
}

// A loop with no exit signal is the leak this analyzer exists for.
func SpawnLoop() {
	go func() { // want "no provable termination signal"
		for {
			work()
		}
	}()
}

// WaitGroup-tracked workers terminate by contract: leaking one would
// deadlock the owner's Wait.
func SpawnTracked(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for busy() {
			work()
		}
	}()
}

// Supervisor's go statement resolves to a module method whose select
// receives a stop signal.
type Supervisor struct {
	stop chan struct{}
	tick chan int
}

func (s *Supervisor) Start() {
	go s.run()
}

func (s *Supervisor) run() {
	for {
		select {
		case <-s.stop:
			return
		case n := <-s.tick:
			_ = n
		}
	}
}

// A context loop receives from ctx.Done().
func SpawnCtx(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			}
		}
	}()
}

// Ranging over a channel drains until the sender closes it.
func SpawnRange(ch chan int) {
	go func() {
		for range ch {
			work()
		}
	}()
}

// One hop of indirection: the body loops but delegates the receive to a
// helper.
func SpawnDelegate(ch chan int) {
	go func() {
		for {
			drain(ch)
		}
	}()
}

func drain(ch chan int) {
	<-ch
}

// A declared daemon is exempt — with a reason.
func SpawnDaemon() {
	//sig:daemon background sampler runs for the process lifetime
	go func() {
		for {
			work()
		}
	}()
}

// A bare //sig:daemon declares nothing: the declaration itself is
// reported and the go statement still has to prove termination.
func SpawnBareDaemon() {
	/* want "requires a reason" */ //sig:daemon
	go func() {                    // want "no provable termination signal"
		for {
			work()
		}
	}()
}

// A goroutine target outside the module cannot be checked.
func SpawnOpaque(f func()) {
	go f() // want "cannot be resolved"
}
