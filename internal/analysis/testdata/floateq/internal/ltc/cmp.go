// Package ltc lives under the internal/ltc path suffix the floateq rule
// guards, and seeds float equality comparisons.
package ltc

func Equal(a, b float64) bool {
	return a == b // want "compares floats"
}

func NotEqual(a, b float32) bool {
	return a != b // want "compares floats"
}

type pair struct{ x, y float64 }

func PairEqual(p, q pair) bool {
	return p == q // want "compares floats"
}

// Integer equality is untouched.
func IntEqual(a, b int) bool {
	return a == b
}

// Ordering comparisons on floats are fine; only ==/!= are flagged.
func Less(a, b float64) bool {
	return a < b
}
