// Package elsewhere is outside the internal/ltc suffix: float equality
// here is the legitimate config-identity idiom and stays unflagged.
package elsewhere

func Equal(a, b float64) bool {
	return a == b
}
