// Package codec seeds errdrop violations: Encode/Decode/io calls whose
// error result is silently discarded.
package codec

import (
	"io"
	"strings"
)

type Store struct{}

func (Store) Encode() error  { return nil }
func (Store) Restore() error { return nil }
func (Store) Close() error   { return nil }

func Drop(s Store) {
	s.Encode() // want "call of Encode discards its error result"
}

func Deferred(s Store) {
	defer s.Restore() // want "defer of Restore discards its error result"
}

func Spawned(s Store) {
	go s.Encode() // want "go of Encode discards its error result"
}

func Copy(w io.Writer, r io.Reader) {
	io.Copy(w, r) // want "call of Copy discards its error result"
}

// Binding the error to _ is an explicit, reviewable decision: clean.
func Explicit(s Store) {
	_ = s.Encode()
}

// Handling the error is obviously clean.
func Handled(s Store) error {
	return s.Encode()
}

// Dropping a read-side Close error is accepted idiom: clean.
func CloseIdiom(s Store) {
	defer s.Close()
	s.Close()
}

// A non-error-returning function of the same name is out of scope.
func Decode() {}

func CallsLocalDecode() {
	Decode()
	strings.NewReader("x").Len()
}
