package codec

import "fake/internal/fault"

// Injection points from the fault package are exempt: these bare calls
// drop error results on purpose (the caller only wants an injected sleep
// or panic) and must produce no findings — not even for fault.Encode,
// whose name is otherwise in errdrop scope.
func FireInjectionPoints() {
	fault.Inject("pipeline/sink", 0)
	fault.Encode()
	defer fault.Inject("snapshot/write", 0)
	go fault.Encode()
}
