package codec

import "fake/internal/fault"

// The fault package gets no blanket exemption: the allowlist audit
// showed the real injection helpers are named Inject/Activate, outside
// errdrop's name scope, so bare Inject calls are fine on their own. A
// fault helper that borrows a codec name is in scope like any other
// function.
func FireInjectionPoints() {
	fault.Inject("pipeline/sink", 0)
	fault.Encode() // want "discards its error result"
	defer fault.Inject("snapshot/write", 0)
	_ = fault.Encode() // explicit discard stays reviewable and allowed
}
