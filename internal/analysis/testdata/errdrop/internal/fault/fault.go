// Package fault mirrors the real internal/fault injection package: its
// error results exist to be injected by tests, so dropping them is
// deliberate and exempt from errdrop — even for a helper whose name
// (Encode) would otherwise put it in scope.
package fault

type Point string

func Inject(p Point, arg int) error { return nil }

func Encode() error { return nil }
