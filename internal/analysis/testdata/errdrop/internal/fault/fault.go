// Package fault mirrors the real internal/fault injection package.
// Inject's name keeps it out of errdrop's scope; Encode exists to prove
// a fault helper with a codec name is NOT exempt.
package fault

type Point string

func Inject(p Point, arg int) error { return nil }

func Encode() error { return nil }
