// Package kinds seeds kindswitch violations: switches over a module enum
// that are neither exhaustive nor guarded by a meaningful default.
package kinds

type Kind int

const (
	KindA Kind = iota
	KindB
	KindC
)

// Exhaustive covers every value: clean.
func Exhaustive(k Kind) string {
	switch k {
	case KindA:
		return "a"
	case KindB:
		return "b"
	case KindC:
		return "c"
	}
	return ""
}

// Guarded has a default that does something: clean.
func Guarded(k Kind) string {
	switch k {
	case KindA:
		return "a"
	default:
		panic("unknown kind")
	}
}

func Missing(k Kind) string {
	switch k { // want "not exhaustive (missing KindC) and has no default"
	case KindA:
		return "a"
	case KindB:
		return "b"
	}
	return ""
}

func Swallow(k Kind) string {
	switch k {
	case KindA:
		return "a"
	default: // want "empty default silently swallows unknown Kind values"
	}
	return ""
}
