package pkg

import "sync"

// Store is the well-annotated case: the declared chain is the order the
// methods actually nest in, so Append and Snapshot stay silent.
//
//sig:lockorder mu < walMu < keysMu
type Store struct {
	mu     sync.RWMutex
	walMu  sync.RWMutex
	keysMu sync.Mutex
	data   map[string]int
}

// Append nests in the declared order: no findings.
func (s *Store) Append(k string) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.walMu.Lock()
	s.keysMu.Lock()
	s.data[k]++
	s.keysMu.Unlock()
	s.walMu.Unlock()
}

// sweep is a helper whose summary says it may acquire keysMu.
func (s *Store) sweep() {
	s.keysMu.Lock()
	s.data = map[string]int{}
	s.keysMu.Unlock()
}

// Snapshot acquires keysMu transitively through sweep while walMu is
// held — walMu < keysMu is declared, so this is silent too.
func (s *Store) Snapshot() {
	s.walMu.Lock()
	s.sweep()
	s.walMu.Unlock()
}

// Invert acquires against the declared order.
func (s *Store) Invert() {
	s.walMu.Lock()
	s.mu.Lock() // want "against the declared //sig:lockorder"
	s.mu.Unlock()
	s.walMu.Unlock()
}

// Relock re-acquires a mutex it already holds.
func (s *Store) Relock() {
	s.keysMu.Lock()
	s.keysMu.Lock() // want "already held"
	s.keysMu.Unlock()
	s.keysMu.Unlock()
}

// Pair has two mutex fields and no declaration at all.
type Pair struct { // want "no //sig:lockorder declaration"
	a sync.Mutex
	b sync.Mutex
}

// Triple declares a and b but never orders c.
//
//sig:lockorder a < b
type Triple struct { // want "does not order mutex field"
	a, b, c sync.Mutex
}

// Wrong names a field that does not exist, leaving b unordered.
//
//sig:lockorder a < zz /* want "is not a mutex field" */
type Wrong struct { // want "does not order mutex field"
	a, b sync.Mutex
}

// Flip declares both directions of the same pair.
//
//sig:lockorder a < b
//sig:lockorder b < a /* want "and the reverse" */
type Flip struct {
	a, b sync.Mutex
}

// Left and Right each hold a single mutex; LR and RL nest them in
// opposite orders — the inversion no per-struct annotation can see.
type Left struct{ mu sync.Mutex }

type Right struct{ mu sync.Mutex }

func LR(l *Left, r *Right) {
	l.mu.Lock()
	r.mu.Lock() // want "lock-order cycle"
	r.mu.Unlock()
	l.mu.Unlock()
}

func RL(l *Left, r *Right) {
	r.mu.Lock()
	l.mu.Lock()
	l.mu.Unlock()
	r.mu.Unlock()
}

// Quad declares two chains that never relate b and c; Mixed acquires c
// through a helper while b is held, an order nobody declared.
//
//sig:lockorder a < b
//sig:lockorder a < c
type Quad struct {
	a, b, c sync.Mutex
}

func (q *Quad) lockC() {
	q.c.Lock()
	q.c.Unlock()
}

func (q *Quad) Mixed() {
	q.b.Lock()
	q.lockC() // want "not declared by //sig:lockorder"
	q.b.Unlock()
}

// Cache shows the deliberate blind spot: Evict calls shed on a
// *different* instance while holding its own mu. The type-level
// self-edge this produces is dropped by design (sharded code), so no
// finding here.
type Cache struct{ mu sync.Mutex }

func (c *Cache) Evict(victim *Cache) {
	c.mu.Lock()
	victim.shed()
	c.mu.Unlock()
}

func (c *Cache) shed() {
	c.mu.Lock()
	c.mu.Unlock()
}
