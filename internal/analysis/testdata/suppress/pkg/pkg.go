// Package pkg exercises the suppression machinery: standalone and
// trailing //siglint:ignore forms, and the bare form that must itself be
// reported.
package pkg

type Store struct{}

func (Store) Encode() error { return nil }

// Standalone form: the comment covers the next line.
func Standalone(s Store) {
	//siglint:ignore fixture proving the standalone suppression form
	s.Encode()
}

// Trailing form: the comment covers its own line.
func Trailing(s Store) {
	s.Encode() //siglint:ignore fixture proving the trailing suppression form
}

// Bare ignore: no reason, so it does not suppress and is itself a finding.
func Bare(s Store) {
	//siglint:ignore
	s.Encode()
}

// Unsuppressed control finding.
func Plain(s Store) {
	s.Encode()
}
