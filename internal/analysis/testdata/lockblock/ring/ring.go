// Package ring seeds lockblock violations: channel operations and
// blocking calls while a sync mutex is held.
package ring

import "sync"

type Ring struct {
	mu sync.Mutex
	ch chan int
}

type flusher struct{}

func (flusher) Flush() {}

func (r *Ring) SendLocked(v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ch <- v // want "channel send while a sync mutex is held"
}

func (r *Ring) RecvLocked() int {
	r.mu.Lock()
	v := <-r.ch // want "channel receive while a sync mutex is held"
	r.mu.Unlock()
	return v
}

func (r *Ring) FlushLocked(f flusher) {
	r.mu.Lock()
	f.Flush() // want "call to Flush while a sync mutex is held"
	r.mu.Unlock()
}

func (r *Ring) RangeLocked() (sum int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for v := range r.ch { // want "range over a channel while a sync mutex is held"
		sum += v
	}
	return sum
}

// SendUnlocked releases the lock before touching the channel: clean.
func (r *Ring) SendUnlocked(v int) {
	r.mu.Lock()
	r.mu.Unlock()
	r.ch <- v
}

// SendNoLock never takes the lock: clean.
func (r *Ring) SendNoLock(v int) {
	r.ch <- v
}
