package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// noallocMarker annotates a function whose body must not allocate. It goes
// in the function's doc comment:
//
//	//sig:noalloc
//	func (l *LTC) Insert(item stream.Item) { ... }
//
// The gate runs the real compiler (go build -gcflags=-m) and fails when
// any escape-to-heap or moved-to-heap diagnostic lands inside an annotated
// function's body. Heavy-hitter structures live or die on their per-item
// constant factors; an accidental boxing or a value captured by a closure
// turns a ~90 ns insert into an allocation per arrival, and no unit test
// notices. This pins the property mechanically.
const noallocMarker = "sig:noalloc"

// NoallocFunc is one annotated function.
type NoallocFunc struct {
	// Name is the (possibly method) name, e.g. "(*LTC).Insert".
	Name string
	// File is the source path relative to the module root.
	File string
	// StartLine and EndLine span the declaration including its body.
	StartLine, EndLine int
}

// EscapeViolation is one compiler diagnostic inside an annotated function.
type EscapeViolation struct {
	Func NoallocFunc
	// Pos is the compiler's position for the escaping value.
	Pos string
	// Detail is the compiler's message, e.g. "&x escapes to heap".
	Detail string
}

func (v EscapeViolation) String() string {
	return fmt.Sprintf("%s: //sig:noalloc %s: %s", v.Pos, v.Func.Name, v.Detail)
}

// FindNoalloc parses every non-test source under root (syntax only — the
// gate needs positions, not types) and returns the annotated functions.
func FindNoalloc(root string) ([]NoallocFunc, error) {
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var funcs []NoallocFunc
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") ||
				strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			rel, err := filepath.Rel(root, path)
			if err != nil {
				return nil, err
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !hasNoallocMarker(fd) {
					continue
				}
				funcs = append(funcs, NoallocFunc{
					Name:      funcDisplayName(fd),
					File:      filepath.ToSlash(rel),
					StartLine: fset.Position(fd.Pos()).Line,
					EndLine:   fset.Position(fd.End()).Line,
				})
			}
		}
	}
	sort.Slice(funcs, func(i, j int) bool {
		if funcs[i].File != funcs[j].File {
			return funcs[i].File < funcs[j].File
		}
		return funcs[i].StartLine < funcs[j].StartLine
	})
	return funcs, nil
}

// hasNoallocMarker reports whether the function's doc comment carries
// //sig:noalloc.
func hasNoallocMarker(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == noallocMarker {
			return true
		}
	}
	return false
}

// funcDisplayName renders "Name", "(T).Name" or "(*T).Name".
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	var b strings.Builder
	b.WriteString("(")
	writeTypeExpr(&b, recv)
	b.WriteString(").")
	b.WriteString(fd.Name.Name)
	return b.String()
}

func writeTypeExpr(b *strings.Builder, e ast.Expr) {
	switch x := e.(type) {
	case *ast.Ident:
		b.WriteString(x.Name)
	case *ast.StarExpr:
		b.WriteString("*")
		writeTypeExpr(b, x.X)
	case *ast.IndexExpr: // generic receiver
		writeTypeExpr(b, x.X)
	default:
		b.WriteString("?")
	}
}

// escapeLine matches one compiler diagnostic: "path.go:line:col: message".
var escapeLine = regexp.MustCompile(`^([^\s:]+\.go):(\d+):(\d+): (.+)$`)

// CheckEscapes compiles the module with escape-analysis diagnostics on and
// returns every heap escape inside a //sig:noalloc function. The go
// command replays compiler output from the build cache, so repeated runs
// are cheap. The returned funcs list is the full annotation inventory, so
// callers can report coverage alongside violations.
func CheckEscapes(root string) ([]EscapeViolation, []NoallocFunc, error) {
	funcs, err := FindNoalloc(root)
	if err != nil {
		return nil, nil, err
	}
	if len(funcs) == 0 {
		return nil, funcs, nil
	}
	byFile := map[string][]NoallocFunc{}
	for _, fn := range funcs {
		byFile[fn.File] = append(byFile[fn.File], fn)
	}

	cmd := exec.Command("go", "build", "-gcflags=-m", "./...")
	cmd.Dir = root
	outBytes, err := cmd.CombinedOutput()
	output := string(outBytes)
	if err != nil {
		return nil, funcs, fmt.Errorf("go build -gcflags=-m: %w\n%s", err, output)
	}

	var violations []EscapeViolation
	for _, line := range strings.Split(output, "\n") {
		m := escapeLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") &&
			!strings.Contains(msg, "moved to heap") {
			continue
		}
		// Root-package diagnostics print as "./file.go"; FindNoalloc
		// records module-relative paths without the prefix.
		file := strings.TrimPrefix(filepath.ToSlash(m[1]), "./")
		lineNo := atoiSafe(m[2])
		for _, fn := range byFile[file] {
			if lineNo >= fn.StartLine && lineNo <= fn.EndLine {
				violations = append(violations, EscapeViolation{
					Func:   fn,
					Pos:    fmt.Sprintf("%s:%s:%s", m[1], m[2], m[3]),
					Detail: msg,
				})
				break
			}
		}
	}
	return violations, funcs, nil
}

func atoiSafe(s string) int {
	n := 0
	for _, r := range s {
		n = n*10 + int(r-'0')
	}
	return n
}
