package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// LockBlock flags potentially blocking operations — channel sends and
// receives, defaultless selects, WaitGroup.Wait and Flush calls — executed
// while a sync mutex is held. A worker that blocks under a shard or
// tracker lock while the peer it waits on needs that same lock is the
// pipeline's poison-on-panic deadlock class; inside a lock a hot path
// should only touch memory.
//
// The walk is straight-line and branch-local: Lock()/RLock() raises the
// held depth, Unlock()/RUnlock() lowers it, a deferred unlock leaves the
// rest of the function locked, and nested blocks see the depth at their
// entry without leaking their own changes back out. Function literals are
// analyzed as fresh functions, since they run on their own schedule.
const lockBlockName = "lockblock"

var LockBlock = &Analyzer{
	Name: lockBlockName,
	Doc:  "no channel operation, Flush or WaitGroup.Wait while a sync mutex is held",
	Run:  runLockBlock,
}

func runLockBlock(p *Program) []Finding {
	var out []Finding
	for _, pkg := range p.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch fn := n.(type) {
				case *ast.FuncDecl:
					if fn.Body != nil {
						w := &lockWalker{prog: p, pkg: pkg, out: &out}
						w.block(fn.Body, 0)
					}
					return false // fn's literals are walked by lockWalker
				case *ast.FuncLit:
					w := &lockWalker{prog: p, pkg: pkg, out: &out}
					w.block(fn.Body, 0)
					return false
				}
				return true
			})
		}
	}
	return out
}

// lockWalker tracks the held-mutex depth through one function body.
type lockWalker struct {
	prog *Program
	pkg  *Package
	out  *[]Finding
}

// block walks a statement list, threading the lock depth through the
// sequence and handing nested blocks a branch-local copy.
func (w *lockWalker) block(b *ast.BlockStmt, depth int) {
	for _, s := range b.List {
		depth = w.stmt(s, depth)
	}
}

// stmt processes one statement and returns the lock depth after it.
func (w *lockWalker) stmt(s ast.Stmt, depth int) int {
	switch x := s.(type) {
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			switch lockDelta(w.pkg, call) {
			case +1:
				return depth + 1
			case -1:
				if depth > 0 {
					return depth - 1
				}
				return 0
			}
		}
		w.exprs(x.X, depth)
	case *ast.SendStmt:
		if depth > 0 {
			w.report(x.Pos(), "channel send while a sync mutex is held")
		}
		w.exprs(x.Chan, depth)
		w.exprs(x.Value, depth)
	case *ast.DeferStmt:
		// A deferred unlock runs at return; the body stays locked, which
		// is exactly what not decrementing models. Deferred literals run
		// on their own lock state.
		if lockDelta(w.pkg, x.Call) == 0 {
			w.exprs(x.Call, depth)
		}
	case *ast.GoStmt:
		w.exprs(x.Call, 0) // the goroutine does not inherit the caller's locks
	case *ast.AssignStmt:
		for _, e := range x.Rhs {
			w.exprs(e, depth)
		}
		for _, e := range x.Lhs {
			w.exprs(e, depth)
		}
	case *ast.DeclStmt, *ast.ReturnStmt, *ast.IncDecStmt:
		ast.Inspect(s, w.exprVisitor(depth))
	case *ast.BlockStmt:
		w.block(x, depth)
	case *ast.IfStmt:
		if x.Init != nil {
			depth = w.stmt(x.Init, depth)
		}
		w.exprs(x.Cond, depth)
		w.block(x.Body, depth)
		if x.Else != nil {
			w.stmt(x.Else, depth)
		}
	case *ast.ForStmt:
		if x.Init != nil {
			depth = w.stmt(x.Init, depth)
		}
		if x.Cond != nil {
			w.exprs(x.Cond, depth)
		}
		w.block(x.Body, depth)
	case *ast.RangeStmt:
		if depth > 0 && isChannel(w.pkg, x.X) {
			w.report(x.Pos(), "range over a channel while a sync mutex is held")
		}
		w.exprs(x.X, depth)
		w.block(x.Body, depth)
	case *ast.SwitchStmt:
		if x.Init != nil {
			depth = w.stmt(x.Init, depth)
		}
		if x.Tag != nil {
			w.exprs(x.Tag, depth)
		}
		for _, c := range x.Body.List {
			cc := c.(*ast.CaseClause)
			for _, s := range cc.Body {
				w.stmt(s, depth)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range x.Body.List {
			cc := c.(*ast.CaseClause)
			for _, s := range cc.Body {
				w.stmt(s, depth)
			}
		}
	case *ast.SelectStmt:
		if depth > 0 && !selectHasDefault(x) {
			w.report(x.Pos(), "blocking select while a sync mutex is held")
		}
		for _, c := range x.Body.List {
			cc := c.(*ast.CommClause)
			for _, s := range cc.Body {
				w.stmt(s, depth)
			}
		}
	case *ast.LabeledStmt:
		return w.stmt(x.Stmt, depth)
	}
	return depth
}

// exprs scans an expression tree for blocking operations, skipping nested
// function literals (they are analyzed as fresh functions by the outer
// Inspect pass).
func (w *lockWalker) exprs(e ast.Expr, depth int) {
	ast.Inspect(e, w.exprVisitor(depth))
}

func (w *lockWalker) exprVisitor(depth int) func(ast.Node) bool {
	return func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			lw := &lockWalker{prog: w.prog, pkg: w.pkg, out: w.out}
			lw.block(x.Body, 0)
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && depth > 0 {
				w.report(x.Pos(), "channel receive while a sync mutex is held")
			}
		case *ast.CallExpr:
			if depth == 0 {
				return true
			}
			if name, blocking := blockingCall(w.pkg, x); blocking {
				w.report(x.Pos(), fmt.Sprintf("call to %s while a sync mutex is held", name))
			}
		}
		return true
	}
}

// report records one finding at pos.
func (w *lockWalker) report(pos token.Pos, msg string) {
	*w.out = append(*w.out, Finding{
		Analyzer: lockBlockName,
		Pos:      w.prog.Fset.Position(pos),
		Message:  msg,
	})
}

// lockDelta classifies a call: +1 for sync Lock/RLock, -1 for sync
// Unlock/RUnlock, 0 otherwise.
func lockDelta(pkg *Package, call *ast.CallExpr) int {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return 0
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return 0
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return +1
	case "Unlock", "RUnlock":
		return -1
	}
	return 0
}

// blockingCall reports whether call is a known blocking operation: any
// method named Flush, or sync.WaitGroup.Wait. sync.Cond.Wait is excluded —
// waiting on a condition with its mutex held is that API's contract.
func blockingCall(pkg *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		// Plain function: only flag the sync-package WaitGroup helpers.
		return "", false
	}
	switch fn.Name() {
	case "Flush":
		return "Flush", true
	case "Wait":
		if fn.Pkg() != nil && fn.Pkg().Path() == "sync" &&
			recvNamed(sig) == "WaitGroup" {
			return "WaitGroup.Wait", true
		}
	}
	return "", false
}

// recvNamed names a method's receiver type, dereferencing one pointer.
func recvNamed(sig *types.Signature) string {
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// isChannel reports whether e has channel type.
func isChannel(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// selectHasDefault reports whether a select statement is non-blocking.
func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
