package analysis

// Shared call-graph plumbing for the whole-module concurrency analyzers
// (lockorder, goleak). Both need to follow a call from its site to the
// function declaration it lands on, across package boundaries, using
// nothing but the type-checker's object tables.

import (
	"go/ast"
	"go/types"
)

// declSite is one function or method declared in the module, with the
// package whose type info describes its body.
type declSite struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// moduleFuncs maps every function and method declared in the module
// (with a body) to its declaration site.
func moduleFuncs(p *Program) map[*types.Func]declSite {
	out := map[*types.Func]declSite{}
	for _, pkg := range p.Packages {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					out[fn] = declSite{pkg: pkg, decl: fd}
				}
			}
		}
	}
	return out
}

// calleeOf resolves a call expression to the concrete function object it
// invokes: a plain function call or a method call on a concrete receiver.
// Interface dispatch and calls through function values return nil — the
// analyzers treat those conservatively at each use site.
func calleeOf(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
