package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FloatEqPackages lists the import-path suffixes FloatEq applies to. The
// LTC core earned the restriction: its eviction order is decided by the
// exact Q44.20 fixed-point comparator precisely because float comparison
// semantics are too subtle to sprinkle through a hot path — an == that
// "works" on one code path ties differently after a seemingly neutral
// refactor of the arithmetic. Code elsewhere in the module compares floats
// for config identity, which is a different, legitimate idiom.
var FloatEqPackages = []string{"internal/ltc"}

// FloatEq flags == and != where either operand is a floating-point value,
// or a struct or array whose comparison includes floating-point fields,
// inside the packages named by FloatEqPackages.
const floatEqName = "floateq"

var FloatEq = &Analyzer{
	Name: floatEqName,
	Doc:  "no ==/!= on float operands inside internal/ltc (use the fixed-point comparator)",
	Run:  runFloatEq,
}

func runFloatEq(p *Program) []Finding {
	var out []Finding
	for _, pkg := range p.Packages {
		if !floatEqApplies(pkg.Path) {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				bin, ok := n.(*ast.BinaryExpr)
				if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
					return true
				}
				t := operandType(pkg, bin)
				if t == nil || !comparesFloats(t) {
					return true
				}
				out = append(out, Finding{
					Analyzer: floatEqName,
					Pos:      p.Fset.Position(bin.OpPos),
					Message: fmt.Sprintf(
						"%s on %s compares floats; use the fixed-point comparator or an epsilon",
						bin.Op, t),
				})
				return true
			})
		}
	}
	return out
}

func floatEqApplies(path string) bool {
	for _, suffix := range FloatEqPackages {
		if path == suffix || strings.HasSuffix(path, "/"+suffix) {
			return true
		}
	}
	return false
}

// operandType picks the typed operand of a comparison (one side may be an
// untyped constant such as 0).
func operandType(pkg *Package, bin *ast.BinaryExpr) types.Type {
	for _, e := range []ast.Expr{bin.X, bin.Y} {
		if tv, ok := pkg.Info.Types[e]; ok && tv.Type != nil {
			if _, untyped := tv.Type.(*types.Basic); !untyped || tv.Value == nil {
				return tv.Type
			}
		}
	}
	if tv, ok := pkg.Info.Types[bin.X]; ok {
		return tv.Type
	}
	return nil
}

// comparesFloats reports whether comparing two values of type t compares
// floating-point representations, directly or through struct fields or
// array elements.
func comparesFloats(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsFloat != 0
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if comparesFloats(u.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return comparesFloats(u.Elem())
	}
	return false
}
