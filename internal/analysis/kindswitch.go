package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// KindSwitch flags switches over the module's enum-like types —
// BaselineKind, SketchKind, ReplacementPolicy, codec versions and any
// future integer type with a declared constant set — that neither cover
// every declared constant nor carry a non-empty default. A new enum value
// (a ninth baseline, a codec version 4) must fail loudly at the switch
// that forgot it, not fall through into silently wrong behavior.
const kindSwitchName = "kindswitch"

var KindSwitch = &Analyzer{
	Name: kindSwitchName,
	Doc:  "switches over module enum types must be exhaustive or carry a non-empty default",
	Run:  runKindSwitch,
}

// enumInfo is the declared constant set of one module enum type.
type enumInfo struct {
	names  []string           // declared constant names, in declaration order
	values map[int64][]string // constant value -> names (aliases share a value)
}

func runKindSwitch(p *Program) []Finding {
	enums := collectEnums(p)
	if len(enums) == 0 {
		return nil
	}
	var out []Finding
	for _, pkg := range p.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok || sw.Tag == nil {
					return true
				}
				tv, ok := pkg.Info.Types[sw.Tag]
				if !ok || tv.Type == nil {
					return true
				}
				named, ok := tv.Type.(*types.Named)
				if !ok {
					return true
				}
				enum, ok := enums[named]
				if !ok {
					return true
				}
				if f := checkEnumSwitch(p, pkg, sw, named, enum); f != nil {
					out = append(out, *f)
				}
				return true
			})
		}
	}
	return out
}

// collectEnums finds every named integer type declared in the module that
// has at least two package-level constants of that exact type.
func collectEnums(p *Program) map[*types.Named]*enumInfo {
	enums := map[*types.Named]*enumInfo{}
	for _, pkg := range p.Packages {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			c, ok := scope.Lookup(name).(*types.Const)
			if !ok {
				continue
			}
			named, ok := c.Type().(*types.Named)
			if !ok || named.Obj().Pkg() != pkg.Types {
				continue
			}
			basic, ok := named.Underlying().(*types.Basic)
			if !ok || basic.Info()&types.IsInteger == 0 {
				continue
			}
			v, ok := constant.Int64Val(c.Val())
			if !ok {
				continue
			}
			info := enums[named]
			if info == nil {
				info = &enumInfo{values: map[int64][]string{}}
				enums[named] = info
			}
			info.names = append(info.names, name)
			info.values[v] = append(info.values[v], name)
		}
	}
	for named, info := range enums {
		if len(info.names) < 2 {
			delete(enums, named)
		}
	}
	return enums
}

// checkEnumSwitch validates one switch over an enum type.
func checkEnumSwitch(p *Program, pkg *Package, sw *ast.SwitchStmt,
	named *types.Named, enum *enumInfo) *Finding {
	covered := map[int64]bool{}
	var defaultClause *ast.CaseClause
	for _, c := range sw.Body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		for _, e := range cc.List {
			tv, ok := pkg.Info.Types[e]
			if !ok || tv.Value == nil {
				// A non-constant case defeats coverage analysis; treat the
				// switch as guarded by it, like a default.
				defaultClause = cc
				continue
			}
			if v, ok := constant.Int64Val(tv.Value); ok {
				covered[v] = true
			}
		}
	}
	if defaultClause != nil {
		if len(defaultClause.Body) == 0 {
			return &Finding{
				Analyzer: kindSwitchName,
				Pos:      p.Fset.Position(defaultClause.Pos()),
				Message: fmt.Sprintf(
					"empty default silently swallows unknown %s values; error or document the fallthrough",
					named.Obj().Name()),
			}
		}
		return nil
	}
	var missing []string
	seen := map[int64]bool{}
	for _, name := range enum.names {
		// Walk values through the declared names so aliases report once.
		for v, names := range enum.values {
			if names[0] != name || covered[v] || seen[v] {
				continue
			}
			seen[v] = true
			missing = append(missing, name)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	sort.Strings(missing)
	return &Finding{
		Analyzer: kindSwitchName,
		Pos:      p.Fset.Position(sw.Pos()),
		Message: fmt.Sprintf(
			"switch over %s is not exhaustive (missing %s) and has no default",
			named.Obj().Name(), strings.Join(missing, ", ")),
	}
}
