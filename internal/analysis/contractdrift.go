package analysis

// contractdrift diffs the contracts the code exports against the
// documentation that promises them, in both directions. Four surfaces
// are extracted from source:
//
//   - metric families: the first string-literal argument of every
//     Counter/Gauge/Histogram registration starting with "sigstream_";
//   - wire magics: string constants shaped like SWL1 (three capitals,
//     one digit);
//   - the HTTP route table: the package-level `routeTable` slice;
//   - the error envelope codes: the package-level `ErrorCodes` map.
//
// Docs are README.md, OPERATIONS.md and DESIGN.md at the module root
// (missing files are skipped; route and error tables live in README.md
// only). A metric token in the docs may end in `*`, documenting every
// family with that prefix; a token ending in `_` is a prose fragment and
// claims nothing. Histogram families are documented by their base name
// or any of the _bucket/_count/_sum series. Everything the source
// exports must be documented, and everything the docs promise must still
// exist — an undocumented metric and a stale table row are both
// findings. Doc-side findings carry the doc file position; they cannot
// be suppressed inline, only fixed.
//
// This one generated check replaces the hand-written README contract
// tests for routes, error codes and the ingest protocol.

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

const contractDriftName = "contractdrift"

var ContractDrift = &Analyzer{
	Name: contractDriftName,
	Doc:  "metric names, wire magics, the route table and error codes stay in sync with README/OPERATIONS/DESIGN",
	Run:  runContractDrift,
}

// contractDocNames are the documentation files searched, relative to the
// module root.
var contractDocNames = []string{"README.md", "OPERATIONS.md", "DESIGN.md"}

var (
	metricTokenRe = regexp.MustCompile(`sigstream_[a-z0-9_]*\*?`)
	magicConstRe  = regexp.MustCompile(`^[A-Z]{3}[0-9]$`)
	magicTokenRe  = regexp.MustCompile(`\b[A-Z]{3}[0-9]\b`)
	routeRowRe    = regexp.MustCompile("^\\|\\s*`(GET|POST|PUT|PATCH|DELETE)`\\s*\\|\\s*`([^`]+)`\\s*\\|")
	errorRowRe    = regexp.MustCompile("^\\|\\s*`([a-z_]+)`\\s*\\|\\s*([0-9]{3})\\s*\\|")
)

// docSite is one token occurrence in a documentation file.
type docSite struct {
	pos token.Position
}

// contractDocs is the parsed documentation side of the diff.
type contractDocs struct {
	present bool // at least one doc file exists
	readme  bool // README.md exists (route/error tables live there)

	metricExact map[string][]docSite // exact metric tokens
	metricGlob  map[string][]docSite // prefix tokens (trailing * stripped)
	magics      map[string][]docSite
	routes      map[[2]string]docSite // {method, pattern} → first row
	errors      map[string]docSite    // "code name" → first row
}

func runContractDrift(p *Program) []Finding {
	docs := loadContractDocs(p.Root)
	if !docs.present {
		return nil
	}
	var out []Finding
	out = append(out, driftMetrics(p, docs)...)
	out = append(out, driftMagics(p, docs)...)
	out = append(out, driftRoutes(p, docs)...)
	out = append(out, driftErrors(p, docs)...)
	return out
}

// loadContractDocs scans the documentation files for metric tokens,
// magic tokens, route rows and error rows.
func loadContractDocs(root string) *contractDocs {
	d := &contractDocs{
		metricExact: map[string][]docSite{},
		metricGlob:  map[string][]docSite{},
		magics:      map[string][]docSite{},
		routes:      map[[2]string]docSite{},
		errors:      map[string]docSite{},
	}
	for _, name := range contractDocNames {
		path := filepath.Join(root, name)
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		d.present = true
		isReadme := name == "README.md"
		if isReadme {
			d.readme = true
		}
		for i, line := range strings.Split(string(data), "\n") {
			at := func(col int) docSite {
				return docSite{pos: token.Position{Filename: path, Line: i + 1, Column: col + 1}}
			}
			seen := map[string]bool{}
			for _, m := range metricTokenRe.FindAllStringIndex(line, -1) {
				tok := line[m[0]:m[1]]
				if seen[tok] {
					continue
				}
				seen[tok] = true
				switch {
				case strings.HasSuffix(tok, "*"):
					pre := strings.TrimSuffix(tok, "*")
					d.metricGlob[pre] = append(d.metricGlob[pre], at(m[0]))
				case strings.HasSuffix(tok, "_"):
					// A prose fragment like "grep sigstream_"; claims nothing.
				default:
					d.metricExact[tok] = append(d.metricExact[tok], at(m[0]))
				}
			}
			for _, m := range magicTokenRe.FindAllStringIndex(line, -1) {
				tok := line[m[0]:m[1]]
				if seen["magic:"+tok] {
					continue
				}
				seen["magic:"+tok] = true
				d.magics[tok] = append(d.magics[tok], at(m[0]))
			}
			if isReadme {
				if m := routeRowRe.FindStringSubmatch(line); m != nil {
					key := [2]string{m[1], m[2]}
					if _, ok := d.routes[key]; !ok {
						d.routes[key] = at(0)
					}
				}
				if m := errorRowRe.FindStringSubmatch(line); m != nil {
					key := m[2] + " " + m[1]
					if _, ok := d.errors[key]; !ok {
						d.errors[key] = at(0)
					}
				}
			}
		}
	}
	return d
}

// metricDef is one registered metric family.
type metricDef struct {
	kind string
	pos  token.Position
}

// driftMetrics diffs registered sigstream_* families against doc tokens.
func driftMetrics(p *Program, docs *contractDocs) []Finding {
	defs := map[string]metricDef{}
	for _, pkg := range p.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				var kind string
				switch sel.Sel.Name {
				case "Counter":
					kind = "counter"
				case "Gauge":
					kind = "gauge"
				case "Histogram":
					kind = "histogram"
				default:
					return true
				}
				tv, ok := pkg.Info.Types[call.Args[0]]
				if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
					return true
				}
				name := constant.StringVal(tv.Value)
				if !strings.HasPrefix(name, "sigstream_") {
					return true
				}
				if _, dup := defs[name]; !dup {
					defs[name] = metricDef{kind: kind, pos: p.Fset.Position(call.Args[0].Pos())}
				}
				return true
			})
		}
	}
	if len(defs) == 0 && len(docs.metricExact) == 0 && len(docs.metricGlob) == 0 {
		return nil
	}

	// resolve maps a doc token to the family it documents, honoring the
	// histogram series suffixes.
	resolve := func(tok string) (string, bool) {
		if _, ok := defs[tok]; ok {
			return tok, true
		}
		for _, suf := range []string{"_bucket", "_count", "_sum"} {
			base := strings.TrimSuffix(tok, suf)
			if base != tok {
				if def, ok := defs[base]; ok && def.kind == "histogram" {
					return base, true
				}
			}
		}
		return "", false
	}

	documented := map[string]bool{}
	for tok := range docs.metricExact {
		if fam, ok := resolve(tok); ok {
			documented[fam] = true
		}
	}
	for pre := range docs.metricGlob {
		for fam := range defs {
			if strings.HasPrefix(fam, pre) {
				documented[fam] = true
			}
		}
	}

	var out []Finding
	for _, fam := range sortedKeys(defs) {
		if !documented[fam] {
			out = append(out, Finding{
				Analyzer: contractDriftName,
				Pos:      defs[fam].pos,
				Message:  fmt.Sprintf("metric %s is not documented in README.md, OPERATIONS.md or DESIGN.md", fam),
			})
		}
	}
	for _, tok := range sortedKeys(docs.metricExact) {
		if _, ok := resolve(tok); !ok {
			for _, site := range docs.metricExact[tok] {
				out = append(out, Finding{
					Analyzer: contractDriftName,
					Pos:      site.pos,
					Message:  fmt.Sprintf("documented metric %s is not registered in source", tok),
				})
			}
		}
	}
	for _, pre := range sortedKeys(docs.metricGlob) {
		matched := false
		for fam := range defs {
			if strings.HasPrefix(fam, pre) {
				matched = true
				break
			}
		}
		if !matched {
			for _, site := range docs.metricGlob[pre] {
				out = append(out, Finding{
					Analyzer: contractDriftName,
					Pos:      site.pos,
					Message:  fmt.Sprintf("documented metric prefix %s* matches no registered metric", pre),
				})
			}
		}
	}
	return out
}

// driftMagics diffs magic string constants against doc tokens.
func driftMagics(p *Program, docs *contractDocs) []Finding {
	magics := map[string]token.Position{}
	for _, pkg := range p.Packages {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || gd.Tok != token.CONST {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						obj, ok := pkg.Info.Defs[name].(*types.Const)
						if !ok || obj.Val().Kind() != constant.String {
							continue
						}
						v := constant.StringVal(obj.Val())
						if !magicConstRe.MatchString(v) {
							continue
						}
						if _, dup := magics[v]; !dup {
							magics[v] = p.Fset.Position(name.Pos())
						}
					}
				}
			}
		}
	}
	if len(magics) == 0 && len(docs.magics) == 0 {
		return nil
	}
	var out []Finding
	for _, v := range sortedKeys(magics) {
		if _, ok := docs.magics[v]; !ok {
			out = append(out, Finding{
				Analyzer: contractDriftName,
				Pos:      magics[v],
				Message:  fmt.Sprintf("wire magic %q is not documented in README.md, OPERATIONS.md or DESIGN.md", v),
			})
		}
	}
	for _, v := range sortedKeys(docs.magics) {
		if _, ok := magics[v]; !ok {
			for _, site := range docs.magics[v] {
				out = append(out, Finding{
					Analyzer: contractDriftName,
					Pos:      site.pos,
					Message:  fmt.Sprintf("documented magic %q is not a constant in source", v),
				})
			}
		}
	}
	return out
}

// driftRoutes diffs the routeTable slice against README route rows.
func driftRoutes(p *Program, docs *contractDocs) []Finding {
	table := map[[2]string]bool{}
	var pos token.Position
	found := false
	for _, pkg := range p.Packages {
		lit, vpos := packageVarLit(p, pkg, "routeTable")
		if lit == nil {
			continue
		}
		found = true
		pos = vpos
		for _, elt := range lit.Elts {
			row, ok := elt.(*ast.CompositeLit)
			if !ok {
				continue
			}
			method, mok := structFieldString(pkg, row, "Method")
			pattern, pok := structFieldString(pkg, row, "Pattern")
			if mok && pok {
				table[[2]string{method, pattern}] = true
			}
		}
	}
	if !found || !docs.readme {
		return nil
	}
	var out []Finding
	keys := make([][2]string, 0, len(table))
	for k := range table {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][1] != keys[j][1] {
			return keys[i][1] < keys[j][1]
		}
		return keys[i][0] < keys[j][0]
	})
	for _, k := range keys {
		if _, ok := docs.routes[k]; !ok {
			out = append(out, Finding{
				Analyzer: contractDriftName,
				Pos:      pos,
				Message:  fmt.Sprintf("route %s %s is not documented in README.md's route table", k[0], k[1]),
			})
		}
	}
	dkeys := make([][2]string, 0, len(docs.routes))
	for k := range docs.routes {
		dkeys = append(dkeys, k)
	}
	sort.Slice(dkeys, func(i, j int) bool {
		if dkeys[i][1] != dkeys[j][1] {
			return dkeys[i][1] < dkeys[j][1]
		}
		return dkeys[i][0] < dkeys[j][0]
	})
	for _, k := range dkeys {
		if !table[k] {
			out = append(out, Finding{
				Analyzer: contractDriftName,
				Pos:      docs.routes[k].pos,
				Message:  fmt.Sprintf("documented route %s %s is not in routeTable", k[0], k[1]),
			})
		}
	}
	return out
}

// driftErrors diffs the ErrorCodes map against README error rows.
func driftErrors(p *Program, docs *contractDocs) []Finding {
	codes := map[string]bool{} // "status code_name"
	var pos token.Position
	found := false
	for _, pkg := range p.Packages {
		lit, vpos := packageVarLit(p, pkg, "ErrorCodes")
		if lit == nil {
			continue
		}
		found = true
		pos = vpos
		for _, elt := range lit.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			ktv, kok := pkg.Info.Types[kv.Key]
			vtv, vok := pkg.Info.Types[kv.Value]
			if !kok || !vok || ktv.Value == nil || vtv.Value == nil {
				continue
			}
			status, exact := constant.Int64Val(constant.ToInt(ktv.Value))
			if !exact || vtv.Value.Kind() != constant.String {
				continue
			}
			codes[fmt.Sprintf("%d %s", status, constant.StringVal(vtv.Value))] = true
		}
	}
	if !found || !docs.readme {
		return nil
	}
	var out []Finding
	for _, k := range sortedKeys(codes) {
		if _, ok := docs.errors[k]; !ok {
			out = append(out, Finding{
				Analyzer: contractDriftName,
				Pos:      pos,
				Message:  fmt.Sprintf("error code %s is not documented in README.md's error table", k),
			})
		}
	}
	for _, k := range sortedKeys(docs.errors) {
		if !codes[k] {
			out = append(out, Finding{
				Analyzer: contractDriftName,
				Pos:      docs.errors[k].pos,
				Message:  fmt.Sprintf("documented error code %s is not in ErrorCodes", k),
			})
		}
	}
	return out
}

// packageVarLit finds a package-level `var name = ...` composite literal.
func packageVarLit(p *Program, pkg *Package, name string) (*ast.CompositeLit, token.Position) {
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, n := range vs.Names {
					if n.Name != name || i >= len(vs.Values) {
						continue
					}
					if lit, ok := vs.Values[i].(*ast.CompositeLit); ok {
						return lit, p.Fset.Position(n.Pos())
					}
				}
			}
		}
	}
	return nil, token.Position{}
}

// structFieldString extracts a struct literal's named string field,
// handling both keyed and positional forms; the value must be constant.
func structFieldString(pkg *Package, lit *ast.CompositeLit, field string) (string, bool) {
	constStr := func(e ast.Expr) (string, bool) {
		tv, ok := pkg.Info.Types[e]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			return "", false
		}
		return constant.StringVal(tv.Value), true
	}
	for _, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == field {
				return constStr(kv.Value)
			}
		}
	}
	// Positional literal: find the field's index in the struct type.
	tv, ok := pkg.Info.Types[lit]
	if !ok || tv.Type == nil {
		return "", false
	}
	st, ok := tv.Type.Underlying().(*types.Struct)
	if !ok {
		return "", false
	}
	for i := 0; i < st.NumFields() && i < len(lit.Elts); i++ {
		if st.Field(i).Name() == field {
			if _, keyed := lit.Elts[i].(*ast.KeyValueExpr); keyed {
				return "", false
			}
			return constStr(lit.Elts[i])
		}
	}
	return "", false
}

// sortedKeys returns a map's string keys in order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
