package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a throwaway module for the escape gate to
// compile. files maps module-relative paths to contents.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module tmp\n\ngo 1.22\n"
	for rel, content := range files {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestFindNoallocInventory(t *testing.T) {
	root := writeModule(t, map[string]string{
		"lib/lib.go": `package lib

// Add is annotated.
//
//sig:noalloc
func Add(a, b int) int { return a + b }

type T struct{ n int }

//sig:noalloc
func (t *T) Bump() { t.n++ }

// Plain carries no marker.
func Plain() {}
`,
	})
	funcs, err := FindNoalloc(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(funcs) != 2 {
		t.Fatalf("found %d annotated functions, want 2: %v", len(funcs), funcs)
	}
	if funcs[0].Name != "Add" || funcs[1].Name != "(*T).Bump" {
		t.Errorf("names = %q, %q; want Add, (*T).Bump", funcs[0].Name, funcs[1].Name)
	}
	for _, fn := range funcs {
		if fn.File != "lib/lib.go" {
			t.Errorf("%s recorded in %q, want lib/lib.go", fn.Name, fn.File)
		}
		if fn.StartLine <= 0 || fn.EndLine < fn.StartLine {
			t.Errorf("%s has bad span %d-%d", fn.Name, fn.StartLine, fn.EndLine)
		}
	}
}

func TestCheckEscapesCleanModule(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a module")
	}
	root := writeModule(t, map[string]string{
		"lib/lib.go": `package lib

//sig:noalloc
func Sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}
`,
	})
	violations, funcs, err := CheckEscapes(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(funcs) != 1 {
		t.Fatalf("inventory = %v, want one function", funcs)
	}
	if len(violations) != 0 {
		t.Fatalf("clean function reported violations: %v", violations)
	}
}

// TestCheckEscapesCatchesBoxing proves the gate actually bites: an
// annotated function that boxes a local must fail.
func TestCheckEscapesCatchesBoxing(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a module")
	}
	root := writeModule(t, map[string]string{
		"lib/lib.go": `package lib

// Box deliberately leaks a local to the heap.
//
//sig:noalloc
func Box() *int {
	v := 42
	return &v
}

// Fine is clean and must not be blamed for Box's escape.
//
//sig:noalloc
func Fine(a int) int { return a * 2 }
`,
	})
	violations, funcs, err := CheckEscapes(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(funcs) != 2 {
		t.Fatalf("inventory = %v, want two functions", funcs)
	}
	if len(violations) == 0 {
		t.Fatal("deliberate boxing produced no violations; the gate is blind")
	}
	for _, v := range violations {
		if v.Func.Name != "Box" {
			t.Errorf("violation blamed %s, want Box: %s", v.Func.Name, v)
		}
		if !strings.Contains(v.Detail, "heap") {
			t.Errorf("violation detail %q does not mention the heap", v.Detail)
		}
	}
}

// TestCheckEscapesNoAnnotations pins the fast path: nothing annotated,
// nothing compiled, nothing reported.
func TestCheckEscapesNoAnnotations(t *testing.T) {
	root := writeModule(t, map[string]string{
		"lib/lib.go": "package lib\n\nfunc Plain() {}\n",
	})
	violations, funcs, err := CheckEscapes(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(funcs) != 0 || len(violations) != 0 {
		t.Fatalf("got funcs=%v violations=%v, want none", funcs, violations)
	}
}

// TestRealTreeEscapeGate runs the gate the CI job enforces: every
// annotated hot-path function in this repository stays allocation-free.
func TestRealTreeEscapeGate(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the whole module")
	}
	root := filepath.Join("..", "..")
	violations, funcs, err := CheckEscapes(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(funcs) < 4 {
		t.Fatalf("only %d //sig:noalloc annotations on the real tree, want >= 4", len(funcs))
	}
	for _, v := range violations {
		t.Errorf("heap escape in annotated function: %s", v)
	}
}
