package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// errDropNames are the method/function names whose error results ErrDrop
// refuses to see discarded, wherever they are declared. They are the
// persistence and wire surface of the repo: a dropped Encode/Restore error
// means a checkpoint that silently never happened, and a dropped WAL
// Append/Sync error means an insert acknowledged without the durability
// the ack promised.
var errDropNames = map[string]bool{
	"Encode":          true,
	"Decode":          true,
	"Restore":         true,
	"MarshalBinary":   true,
	"UnmarshalBinary": true,
	"Append":          true,
	"Sync":            true,
}

// errDropPackages are the packages whose error-returning functions are
// covered regardless of name (io.Copy, bufio.Writer.Flush, ...).
var errDropPackages = map[string]bool{
	"io":    true,
	"bufio": true,
}

// ErrDrop flags statements that discard the error result of a
// serialization or I/O call: an expression statement (or defer/go) whose
// call returns an error nobody binds. Assigning the error to _ is an
// explicit, reviewable decision and is allowed; simply not mentioning it
// is not.
const errDropName = "errdrop"

var ErrDrop = &Analyzer{
	Name: errDropName,
	Doc:  "ignored error results from Encode/Decode/Restore/io calls",
	Run:  runErrDrop,
}

func runErrDrop(p *Program) []Finding {
	var out []Finding
	check := func(pkg *Package, call *ast.CallExpr, how string) {
		name, covered := errDropTarget(pkg, call)
		if !covered {
			return
		}
		out = append(out, Finding{
			Analyzer: errDropName,
			Pos:      p.Fset.Position(call.Pos()),
			Message:  fmt.Sprintf("%s of %s discards its error result", how, name),
		})
	}
	for _, pkg := range p.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.ExprStmt:
					if call, ok := x.X.(*ast.CallExpr); ok {
						check(pkg, call, "call")
					}
				case *ast.DeferStmt:
					check(pkg, x.Call, "defer")
				case *ast.GoStmt:
					check(pkg, x.Call, "go")
				}
				return true
			})
		}
	}
	return out
}

// errDropTarget reports whether call is covered by the rule: the callee is
// one of errDropNames or declared in one of errDropPackages, and its
// signature returns an error.
func errDropTarget(pkg *Package, call *ast.CallExpr) (string, bool) {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[fun.Sel]
	case *ast.Ident:
		obj = pkg.Info.Uses[fun]
	default:
		return "", false
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return "", false
	}
	// Dropping a read-side Close error (defer resp.Body.Close()) is
	// accepted Go idiom; flagging it would only breed reflexive ignores.
	// Write-side close errors surface through the preceding Flush/Encode.
	if fn.Name() == "Close" {
		return "", false
	}
	inScope := errDropNames[fn.Name()] ||
		(fn.Pkg() != nil && errDropPackages[fn.Pkg().Path()])
	if !inScope {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !returnsError(sig) {
		return "", false
	}
	return fn.Name(), true
}

// returnsError reports whether the signature's last result is error.
func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
