package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// MixedAtomic flags variables that are accessed through sync/atomic in one
// place and read or written plainly in another. Mixing the two memory
// models hides real races from -race (it only sees the plain side) and is
// exactly the bug class the pipeline's counter design avoids by keeping
// atomics and mutex-guarded state in disjoint fields. Typed atomics
// (atomic.Uint64 and friends) are immune by construction; this rule exists
// for the address-taken form, atomic.AddUint64(&s.n, 1).
const mixedAtomicName = "mixedatomic"

var MixedAtomic = &Analyzer{
	Name: mixedAtomicName,
	Doc:  "a variable accessed via sync/atomic must never be accessed plainly",
	Run:  runMixedAtomic,
}

func runMixedAtomic(p *Program) []Finding {
	// Pass 1: collect every variable whose address is passed to a
	// sync/atomic function, plus the exact AST nodes of those sanctioned
	// uses. The object set is module-global, so a field updated atomically
	// in one package and read plainly from another is still caught.
	atomicVars := map[types.Object]token.Position{}
	sanctioned := map[ast.Node]bool{}
	for _, pkg := range p.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicCall(pkg, call) {
					return true
				}
				for _, arg := range call.Args {
					un, ok := arg.(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					obj := addressedVar(pkg, un.X)
					if obj == nil {
						continue
					}
					if _, seen := atomicVars[obj]; !seen {
						atomicVars[obj] = p.Fset.Position(call.Pos())
					}
					sanctioned[un.X] = true
					// Pass 2 visits a selector's Sel ident separately;
					// sanction it too so &c.n does not flag its own n.
					if sel, ok := un.X.(*ast.SelectorExpr); ok {
						sanctioned[sel.Sel] = true
					}
				}
				return true
			})
		}
	}
	if len(atomicVars) == 0 {
		return nil
	}

	// Pass 2: every other use of those variables is a plain access.
	var out []Finding
	for _, pkg := range p.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				var obj types.Object
				switch x := n.(type) {
				case *ast.SelectorExpr:
					obj = pkg.Info.Uses[x.Sel]
				case *ast.Ident:
					obj = pkg.Info.Uses[x]
				default:
					return true
				}
				first, hot := atomicVars[obj]
				if !hot || sanctioned[n] {
					return true
				}
				// A SelectorExpr visit also visits its Sel ident; report
				// the selector once and skip the nested ident.
				if sel, ok := n.(*ast.SelectorExpr); ok {
					sanctioned[sel.Sel] = true
				}
				out = append(out, Finding{
					Analyzer: mixedAtomicName,
					Pos:      p.Fset.Position(n.Pos()),
					Message: fmt.Sprintf(
						"%s is accessed via sync/atomic (first at %s); plain access mixes memory models",
						obj.Name(), shortPos(first)),
				})
				return true
			})
		}
	}
	return out
}

// isAtomicCall reports whether call invokes a function from sync/atomic.
func isAtomicCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id := identOf(sel.X)
	if id == nil {
		return false
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}

// addressedVar resolves &expr's operand to a variable object (field,
// package-level or local), or nil when the operand is not a variable.
func addressedVar(pkg *Package, e ast.Expr) types.Object {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if v, ok := pkg.Info.Uses[x.Sel].(*types.Var); ok {
			return v
		}
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[x].(*types.Var); ok {
			return v
		}
	case *ast.IndexExpr:
		return addressedVar(pkg, x.X)
	}
	return nil
}

// shortPos renders a position without the column, for finding messages.
func shortPos(pos token.Position) string {
	return fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
}
