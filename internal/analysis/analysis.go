// Package analysis is sigstream's repo-specific static-analysis framework:
// the engine behind cmd/siglint. Generic tooling (go vet, staticcheck,
// -race) cannot check the invariants the cache-conscious core and the
// concurrent pipeline rely on — parallel-lane indexing, the exact
// fixed-point significance comparator that forbids float equality, the
// atomic-vs-mutex split of the pipeline counters, and the zero-allocation
// guarantee of the per-arrival hot path. This package loads every package
// in the module with the standard library's parser and type checker (no
// external modules, matching the repo's zero-dependency rule) and runs a
// small set of analyzers encoding exactly those invariants.
//
// Analyzers report Findings. A finding is suppressed by an inline comment
//
//	//siglint:ignore <reason>
//
// on the offending line or the line directly above it. The reason is
// mandatory: a bare //siglint:ignore is itself reported. Suppressions are
// deliberately loud in the source — each one documents why a rule does not
// apply at that site.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one analyzer hit.
type Finding struct {
	// Analyzer names the rule that fired.
	Analyzer string
	// Pos locates the offending node.
	Pos token.Position
	// Message explains the violation.
	Message string
}

// String renders the finding in the file:line:col style editors understand.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Analyzer is one repo-specific rule.
type Analyzer struct {
	// Name is the identifier used in output and suppression bookkeeping.
	Name string
	// Doc is a one-line description for -list output.
	Doc string
	// Run inspects the loaded program and reports violations. Run must not
	// filter suppressions itself; RunAll applies them uniformly.
	Run func(*Program) []Finding
}

// Analyzers returns the full rule set, in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MixedAtomic,
		LockBlock,
		LockOrder,
		GoLeak,
		FloatEq,
		KindSwitch,
		ErrDrop,
		ContractDrift,
	}
}

// RunAll executes the analyzers, drops findings suppressed by
// //siglint:ignore comments, reports malformed suppressions, and returns
// the surviving findings sorted by position.
func RunAll(p *Program, analyzers []*Analyzer) []Finding {
	sup, bad := collectSuppressions(p)
	var out []Finding
	out = append(out, bad...)
	for _, a := range analyzers {
		for _, f := range a.Run(p) {
			if sup.covers(f.Pos) {
				continue
			}
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out
}

// ignorePrefix introduces a suppression comment.
const ignorePrefix = "siglint:ignore"

// suppressions indexes the lines covered by //siglint:ignore comments,
// keyed by filename.
type suppressions map[string]map[int]bool

func (s suppressions) covers(pos token.Position) bool {
	return s[pos.Filename][pos.Line]
}

// collectSuppressions scans every file's comments. A suppression covers
// its own line (trailing-comment form) and the following line (standalone
// form). A suppression with no reason is reported as a finding instead of
// taking effect.
func collectSuppressions(p *Program) (suppressions, []Finding) {
	entries, bad := suppressionEntries(p)
	sup := suppressions{}
	for _, e := range entries {
		lines := sup[e.Pos.Filename]
		if lines == nil {
			lines = map[int]bool{}
			sup[e.Pos.Filename] = lines
		}
		lines[e.Pos.Line] = true
		lines[e.Pos.Line+1] = true
	}
	return sup, bad
}

// Suppression is one //siglint:ignore comment in the tree, with whether
// any raw finding still needs it.
type Suppression struct {
	// Pos locates the comment.
	Pos token.Position
	// Reason is the mandatory justification text.
	Reason string
	// Used reports whether the suppression covers at least one finding
	// the analyzers would otherwise emit. A suppression that covers
	// nothing is stale and should be deleted.
	Used bool
}

// Suppressions runs the analyzers without applying suppressions and
// reports every reasoned //siglint:ignore with whether it still covers a
// finding — the audit behind `siglint -suppressions`.
func Suppressions(p *Program, analyzers []*Analyzer) []Suppression {
	entries, _ := suppressionEntries(p)
	var raw []Finding
	for _, a := range analyzers {
		raw = append(raw, a.Run(p)...)
	}
	out := make([]Suppression, len(entries))
	for i, e := range entries {
		out[i] = e
		for _, f := range raw {
			if f.Pos.Filename == e.Pos.Filename &&
				(f.Pos.Line == e.Pos.Line || f.Pos.Line == e.Pos.Line+1) {
				out[i].Used = true
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return out
}

// suppressionEntries scans every file's comments for //siglint:ignore,
// returning the reasoned entries and a finding per reasonless one.
func suppressionEntries(p *Program) ([]Suppression, []Finding) {
	var entries []Suppression
	var bad []Finding
	for _, pkg := range p.Packages {
		for _, file := range pkg.Files {
			for _, group := range file.Comments {
				for _, c := range group.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, ignorePrefix) {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					reason := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
					if reason == "" {
						bad = append(bad, Finding{
							Analyzer: "siglint",
							Pos:      pos,
							Message:  "//siglint:ignore requires a reason",
						})
						continue
					}
					entries = append(entries, Suppression{Pos: pos, Reason: reason})
				}
			}
		}
	}
	return entries, bad
}

// identOf unwraps parenthesized identifiers; it returns nil for anything
// more complex.
func identOf(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
