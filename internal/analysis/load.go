package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the package's directory on disk.
	Dir string
	// Files are the parsed non-test sources, in filename order.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's expression and object tables.
	Info *types.Info
}

// Program is the whole loaded module.
type Program struct {
	// Fset maps every node back to its source position.
	Fset *token.FileSet
	// Module is the module path from go.mod.
	Module string
	// Root is the module root directory.
	Root string
	// Packages holds every package in dependency (topological) order.
	Packages []*Package

	byPath map[string]*Package
}

// Load parses and type-checks every non-test package under the module
// rooted at root. Standard-library dependencies are type-checked from
// GOROOT source with cgo disabled, so the loader needs nothing but the
// toolchain's source tree — no compiled export data, no external modules.
// Test files are excluded: the invariants siglint encodes are about
// production code, and external _test packages would complicate the
// single-pass type-check for no analyzer benefit.
func Load(root string) (*Program, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	module, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	// The source importer consults go/build's default context; stdlib cgo
	// files would make it shell out to the cgo tool, so force the pure-Go
	// variants (every package sigstream uses has one).
	build.Default.CgoEnabled = false

	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	p := &Program{Fset: fset, Module: module, Root: root, byPath: map[string]*Package{}}

	// Parse everything first so import edges are known before checking.
	type parsed struct {
		pkg     *Package
		imports map[string]bool
	}
	var all []*parsed
	for _, dir := range dirs {
		pkg, imps, err := parseDir(fset, root, module, dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue // no buildable non-test sources
		}
		all = append(all, &parsed{pkg: pkg, imports: imps})
		p.byPath[pkg.Path] = pkg
	}

	order, err := topoSort(module, all, func(x *parsed) (string, map[string]bool) {
		return x.pkg.Path, x.imports
	})
	if err != nil {
		return nil, err
	}

	std := importer.ForCompiler(fset, "source", nil)
	imp := &programImporter{prog: p, std: std}
	for _, x := range order {
		pkg := x.pkg
		conf := types.Config{Importer: imp}
		pkg.Info = &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		tpkg, err := conf.Check(pkg.Path, fset, pkg.Files, pkg.Info)
		if err != nil {
			return nil, fmt.Errorf("type-check %s: %w", pkg.Path, err)
		}
		pkg.Types = tpkg
		p.Packages = append(p.Packages, pkg)
	}
	return p, nil
}

// Lookup returns the loaded package with the given import path, if any.
func (p *Program) Lookup(path string) *Package { return p.byPath[path] }

// programImporter resolves module-internal imports from the already
// checked packages (topological order guarantees availability) and
// delegates everything else to the GOROOT source importer.
type programImporter struct {
	prog *Program
	std  types.Importer
}

func (pi *programImporter) Import(path string) (*types.Package, error) {
	if pkg := pi.prog.byPath[path]; pkg != nil {
		if pkg.Types == nil {
			return nil, fmt.Errorf("import cycle or unordered import of %s", path)
		}
		return pkg.Types, nil
	}
	return pi.std.Import(path)
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// packageDirs walks the module for directories that may hold a package,
// skipping testdata, vendor, hidden and underscore-prefixed directories.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root &&
			(name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// parseDir parses a directory's non-test sources into one Package and
// reports its module-internal import set. A directory without Go files
// yields a nil package.
func parseDir(fset *token.FileSet, root, module, dir string) (*Package, map[string]bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	imports := map[string]bool{}
	pkgName := ""
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, err
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		} else if f.Name.Name != pkgName {
			return nil, nil, fmt.Errorf("%s: mixed package names %s and %s",
				dir, pkgName, f.Name.Name)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == module || strings.HasPrefix(path, module+"/") {
				imports[path] = true
			}
		}
	}
	if len(files) == 0 {
		return nil, nil, nil
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, nil, err
	}
	path := module
	if rel != "." {
		path = module + "/" + filepath.ToSlash(rel)
	}
	return &Package{Path: path, Dir: dir, Files: files}, imports, nil
}

// topoSort orders packages so every module-internal dependency precedes
// its importer; it reports import cycles as errors.
func topoSort[T any](module string, items []T, key func(T) (string, map[string]bool)) ([]T, error) {
	byPath := map[string]T{}
	paths := make([]string, 0, len(items))
	for _, it := range items {
		path, _ := key(it)
		byPath[path] = it
		paths = append(paths, path)
	}
	sort.Strings(paths)
	const (
		unvisited = iota
		visiting
		done
	)
	state := map[string]int{}
	var order []T
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("import cycle through %s", path)
		}
		state[path] = visiting
		it, ok := byPath[path]
		if !ok {
			return fmt.Errorf("module package %s imported but not found on disk", path)
		}
		_, imps := key(it)
		deps := make([]string, 0, len(imps))
		for dep := range imps {
			deps = append(deps, dep)
		}
		sort.Strings(deps)
		for _, dep := range deps {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[path] = done
		order = append(order, it)
		return nil
	}
	for _, path := range paths {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	return order, nil
}
