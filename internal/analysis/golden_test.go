package analysis

// Golden-file tests: each analyzer runs over a seeded mini-module under
// testdata/<analyzer>/ whose sources mark every expected finding with a
// trailing `// want "substring"` comment. The harness demands an exact
// match both ways — every want satisfied by a finding on that line, every
// finding claimed by a want — so an analyzer that goes quiet or starts
// over-reporting fails loudly.

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// want is one expected finding.
type want struct {
	file   string // slash path as loaded
	line   int
	substr string
}

// wantRe accepts the line-comment form and a block-comment form; the
// latter is for lines whose trailing // comment is itself a directive
// under test (//sig:lockorder, //sig:daemon), where appending "// want"
// would become part of the directive's text.
var wantRe = regexp.MustCompile(`(?://|/\*) want "([^"]*)"`)

// collectWants scans every .go and .md file under root for want
// comments (markdown carries contractdrift's doc-side findings).
func collectWants(t *testing.T, root string) []want {
	t.Helper()
	var wants []want
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() ||
			(!strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, ".md")) {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		abs, err := filepath.Abs(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			if m := wantRe.FindStringSubmatch(line); m != nil {
				wants = append(wants, want{
					file:   filepath.ToSlash(abs),
					line:   i + 1,
					substr: m[1],
				})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

func TestAnalyzerGolden(t *testing.T) {
	cases := []struct {
		dir string
		az  *Analyzer
	}{
		{"mixedatomic", MixedAtomic},
		{"lockblock", LockBlock},
		{"lockorder", LockOrder},
		{"goleak", GoLeak},
		{"floateq", FloatEq},
		{"kindswitch", KindSwitch},
		{"errdrop", ErrDrop},
		{"contractdrift", ContractDrift},
	}
	for _, c := range cases {
		t.Run(c.dir, func(t *testing.T) {
			root := filepath.Join("testdata", c.dir)
			prog, err := Load(root)
			if err != nil {
				t.Fatal(err)
			}
			findings := RunAll(prog, []*Analyzer{c.az})
			wants := collectWants(t, root)
			if len(wants) == 0 {
				t.Fatalf("no want comments under %s; the fixture is broken", root)
			}

			matched := make([]bool, len(findings))
			for _, w := range wants {
				ok := false
				for i, f := range findings {
					if matched[i] {
						continue
					}
					if filepath.ToSlash(f.Pos.Filename) == w.file &&
						f.Pos.Line == w.line &&
						strings.Contains(f.Message, w.substr) {
						matched[i] = true
						ok = true
						break
					}
				}
				if !ok {
					t.Errorf("missing finding at %s:%d containing %q", w.file, w.line, w.substr)
				}
			}
			for i, f := range findings {
				if !matched[i] {
					t.Errorf("unexpected finding: %s", f)
				}
			}
		})
	}
}

// TestSuppression checks the three //siglint:ignore forms over the full
// analyzer set: standalone and trailing comments suppress the next/own
// line, and a bare ignore suppresses nothing but is itself reported.
func TestSuppression(t *testing.T) {
	prog, err := Load(filepath.Join("testdata", "suppress"))
	if err != nil {
		t.Fatal(err)
	}
	findings := RunAll(prog, Analyzers())

	var reasonless, drops int
	for _, f := range findings {
		switch {
		case f.Analyzer == "siglint" && strings.Contains(f.Message, "requires a reason"):
			reasonless++
		case f.Analyzer == "errdrop" && strings.Contains(f.Message, "discards its error result"):
			drops++
		default:
			t.Errorf("unexpected finding: %s", f)
		}
	}
	if reasonless != 1 {
		t.Errorf("got %d reasonless-ignore findings, want 1", reasonless)
	}
	// Bare() is not suppressed by the reasonless ignore, and Plain() is the
	// control; Standalone() and Trailing() must stay silent.
	if drops != 2 {
		t.Errorf("got %d errdrop findings, want 2 (Bare and Plain only)", drops)
	}
}

// TestRealTreeClean pins the PR invariant the CI job enforces: the repo's
// own source has no unsuppressed findings.
func TestRealTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module")
	}
	root := filepath.Join("..", "..")
	prog, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	findings := RunAll(prog, Analyzers())
	for _, f := range findings {
		t.Errorf("finding on the real tree: %s", f)
	}
}
