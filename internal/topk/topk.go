// Package topk provides the bounded min-heap that sketch-based baselines
// keep beside their counter arrays to report top-k items (Section II-A:
// "it needs to maintain a min-heap to record and update top-k frequent
// items").
package topk

import (
	"sigstream/internal/stream"
)

// EntryBytes is the accounted memory per heap slot: 8-byte item ID, 8-byte
// value, plus the index-map overhead (≈8 bytes amortized).
const EntryBytes = 24

// Heap is a capacity-bounded min-heap over (item, value) pairs with O(1)
// membership lookup. The heap keeps the k largest values seen: offering a
// value below the current minimum of a full heap is a no-op.
type Heap struct {
	cap   int
	items []slot
	index map[stream.Item]int
}

type slot struct {
	item  stream.Item
	value float64
}

// New creates a heap holding at most capacity entries.
func New(capacity int) *Heap {
	if capacity < 1 {
		capacity = 1
	}
	return &Heap{
		cap:   capacity,
		items: make([]slot, 0, capacity),
		index: make(map[stream.Item]int, capacity),
	}
}

// Len reports the number of entries currently held.
func (h *Heap) Len() int { return len(h.items) }

// Cap reports the configured capacity.
func (h *Heap) Cap() int { return h.cap }

// MemoryBytes reports the accounted footprint of a full heap.
func (h *Heap) MemoryBytes() int { return h.cap * EntryBytes }

// Min returns the smallest value in the heap, or 0 if empty.
func (h *Heap) Min() float64 {
	if len(h.items) == 0 {
		return 0
	}
	return h.items[0].value
}

// Value returns the stored value for item.
func (h *Heap) Value(item stream.Item) (float64, bool) {
	i, ok := h.index[item]
	if !ok {
		return 0, false
	}
	return h.items[i].value, true
}

// Contains reports whether item is currently tracked.
func (h *Heap) Contains(item stream.Item) bool {
	_, ok := h.index[item]
	return ok
}

// Offer proposes (item, value). If the item is present its value is updated
// (up or down) and the heap reordered. Otherwise the item is inserted if
// there is room or if value beats the current minimum, which is evicted.
// It reports whether the item is tracked afterwards.
func (h *Heap) Offer(item stream.Item, value float64) bool {
	if i, ok := h.index[item]; ok {
		old := h.items[i].value
		h.items[i].value = value
		if value < old {
			h.siftUp(i)
		} else {
			h.siftDown(i)
		}
		return true
	}
	if len(h.items) < h.cap {
		h.items = append(h.items, slot{item, value})
		i := len(h.items) - 1
		h.index[item] = i
		h.siftUp(i)
		return true
	}
	if value <= h.items[0].value {
		return false
	}
	// Replace the minimum.
	delete(h.index, h.items[0].item)
	h.items[0] = slot{item, value}
	h.index[item] = 0
	h.siftDown(0)
	return true
}

// Items returns all tracked entries with their values, unordered.
func (h *Heap) Items() []stream.Entry {
	es := make([]stream.Entry, len(h.items))
	for i, s := range h.items {
		es[i] = stream.Entry{Item: s.item, Significance: s.value}
	}
	return es
}

// TopK returns up to k tracked entries with the largest values, sorted
// descending. Entries carry only Item and Significance; callers enrich
// Frequency/Persistency from their sketches.
func (h *Heap) TopK(k int) []stream.Entry {
	return stream.TopKFromEntries(h.Items(), k)
}

func (h *Heap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].value <= h.items[i].value {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *Heap) siftDown(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.items[l].value < h.items[smallest].value {
			smallest = l
		}
		if r < n && h.items[r].value < h.items[smallest].value {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h *Heap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.index[h.items[i].item] = i
	h.index[h.items[j].item] = j
}
