package topk

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"sigstream/internal/stream"
)

func TestOfferAndMin(t *testing.T) {
	h := New(3)
	h.Offer(1, 10)
	h.Offer(2, 5)
	h.Offer(3, 7)
	if h.Min() != 5 {
		t.Fatalf("Min = %v, want 5", h.Min())
	}
	if h.Len() != 3 {
		t.Fatalf("Len = %d, want 3", h.Len())
	}
}

func TestEvictionOfMinimum(t *testing.T) {
	h := New(2)
	h.Offer(1, 10)
	h.Offer(2, 5)
	if ok := h.Offer(3, 3); ok {
		t.Fatal("value below minimum must be rejected when full")
	}
	if ok := h.Offer(4, 8); !ok {
		t.Fatal("value above minimum must evict it")
	}
	if h.Contains(2) {
		t.Fatal("item 2 should have been evicted")
	}
	if !h.Contains(4) || !h.Contains(1) {
		t.Fatal("heap lost a survivor")
	}
	if h.Min() != 8 {
		t.Fatalf("Min = %v, want 8", h.Min())
	}
}

func TestUpdateExistingUpAndDown(t *testing.T) {
	h := New(3)
	h.Offer(1, 10)
	h.Offer(2, 20)
	h.Offer(3, 30)
	h.Offer(1, 40) // raise
	if v, _ := h.Value(1); v != 40 {
		t.Fatalf("Value(1) = %v, want 40", v)
	}
	if h.Min() != 20 {
		t.Fatalf("Min = %v, want 20", h.Min())
	}
	h.Offer(3, 1) // lower
	if h.Min() != 1 {
		t.Fatalf("Min after lowering = %v, want 1", h.Min())
	}
}

func TestValueMissing(t *testing.T) {
	h := New(2)
	if _, ok := h.Value(9); ok {
		t.Fatal("missing item reported present")
	}
}

func TestTopKSorted(t *testing.T) {
	h := New(10)
	for i := 1; i <= 10; i++ {
		h.Offer(stream.Item(i), float64(i))
	}
	top := h.TopK(3)
	if len(top) != 3 || top[0].Item != 10 || top[1].Item != 9 || top[2].Item != 8 {
		t.Fatalf("TopK wrong: %+v", top)
	}
}

func TestCapacityFloor(t *testing.T) {
	h := New(0)
	if h.Cap() != 1 {
		t.Fatalf("Cap = %d, want floor 1", h.Cap())
	}
	if h.MemoryBytes() != EntryBytes {
		t.Fatalf("MemoryBytes = %d, want %d", h.MemoryBytes(), EntryBytes)
	}
}

func TestHeapKeepsKLargest(t *testing.T) {
	// Feed 1000 random values; the heap must end holding exactly the 50
	// largest.
	rng := rand.New(rand.NewSource(1))
	values := make([]float64, 1000)
	h := New(50)
	for i := range values {
		values[i] = rng.Float64() * 1000
		h.Offer(stream.Item(i), values[i])
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(values)))
	want := values[:50]
	got := h.TopK(50)
	if len(got) != 50 {
		t.Fatalf("heap holds %d, want 50", len(got))
	}
	for i := range want {
		if got[i].Significance != want[i] {
			t.Fatalf("rank %d: got %v, want %v", i, got[i].Significance, want[i])
		}
	}
}

func TestHeapInvariantProperty(t *testing.T) {
	// After any sequence of offers, the array satisfies the min-heap
	// property and the index map is consistent.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := New(16)
		for op := 0; op < 500; op++ {
			h.Offer(stream.Item(rng.Intn(40)), rng.Float64()*100)
		}
		for i := 1; i < len(h.items); i++ {
			if h.items[(i-1)/2].value > h.items[i].value {
				return false
			}
		}
		for item, i := range h.index {
			if h.items[i].item != item {
				return false
			}
		}
		return len(h.index) == len(h.items)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkOffer(b *testing.B) {
	h := New(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Offer(stream.Item(i%1000), float64(i%777))
	}
}
