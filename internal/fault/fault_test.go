package fault

import (
	"errors"
	"testing"
)

func TestInactiveInjectIsNil(t *testing.T) {
	if err := Inject(PipelineSink, 0); err != nil {
		t.Fatalf("inactive Inject returned %v", err)
	}
	if Active(SnapshotWrite) {
		t.Fatal("no hook installed, but Active reports one")
	}
}

func TestActivateDeactivate(t *testing.T) {
	boom := errors.New("boom")
	off := Activate(SnapshotWrite, func(int) error { return boom })
	if !Active(SnapshotWrite) {
		t.Fatal("hook not visible after Activate")
	}
	if err := Inject(SnapshotWrite, 0); err != boom {
		t.Fatalf("Inject = %v, want boom", err)
	}
	// Other points stay inert.
	if err := Inject(SnapshotSync, 0); err != nil {
		t.Fatalf("unrelated point injected %v", err)
	}
	off()
	if Active(SnapshotWrite) || Inject(SnapshotWrite, 0) != nil {
		t.Fatal("hook survived deactivate")
	}
}

func TestArgReachesHook(t *testing.T) {
	var got int
	off := Activate(PipelineSlow, func(arg int) error { got = arg; return nil })
	defer off()
	// The error is deliberately irrelevant for a sleep-style hook; this
	// bare call is exactly the shape the errdrop exemption allows.
	Inject(PipelineSlow, 7)
	if got != 7 {
		t.Fatalf("hook saw arg %d, want 7", got)
	}
}

func TestPanicPropagates(t *testing.T) {
	off := Activate(PipelineSink, func(int) error { panic("injected") })
	defer off()
	defer func() {
		if r := recover(); r != "injected" {
			t.Fatalf("recovered %v, want injected panic", r)
		}
	}()
	_ = Inject(PipelineSink, 0)
	t.Fatal("injected panic did not propagate")
}
