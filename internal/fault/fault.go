// Package fault provides build-tag-free fault-injection points for chaos
// testing: production code calls Inject at well-known sites, and by
// default nothing happens — the whole call is one atomic pointer load and
// a nil check, with no build tags, environment variables, or interface
// indirection. Tests Activate a hook at a point to make that site
// misbehave: return an error (injected I/O failure), sleep (injected slow
// shard or slow disk), or panic (injected crash). The hooks are process
// global, so tests that activate them must not run in parallel with each
// other and must deactivate on cleanup.
//
// The errdrop analyzer in internal/analysis exempts this package: an
// injection point whose error is deliberately irrelevant at a call site
// (for example a sleep-only hook) may be called as a bare statement
// without a //siglint:ignore suppression.
package fault

import (
	"sync"
	"sync/atomic"
)

// Point names one injection site.
type Point string

// The injection points wired into the tree. Adding a point is free for
// production code: an inactive Inject is a single atomic load.
const (
	// PipelineSink fires in a pipeline worker immediately before the
	// shard's sink is applied; a panicking hook simulates a crashing sink.
	PipelineSink Point = "pipeline/sink"
	// PipelineSlow fires in a pipeline worker before each sub-batch; a
	// sleeping hook simulates a slow shard backing traffic up its ring.
	PipelineSlow Point = "pipeline/slow"
	// SnapshotWrite fires before a snapshot frame is written; an erroring
	// hook makes the write tear (half the frame reaches the temp file).
	SnapshotWrite Point = "snapshot/write"
	// SnapshotSync fires before the snapshot temp file is fsynced.
	SnapshotSync Point = "snapshot/sync"
	// SnapshotRename fires before the temp file is renamed into place.
	SnapshotRename Point = "snapshot/rename"
	// WALAppend fires before a WAL record frame is appended; an erroring
	// hook tears the write (half the frame lands) and the append is
	// refused, exactly what a crash mid-append leaves on disk.
	WALAppend Point = "wal/append"
	// WALSync fires before the WAL segment is fsynced; an erroring hook
	// makes the group commit fail, so none of the waiting appends are
	// acknowledged.
	WALSync Point = "wal/sync"
	// WALRotate fires before the WAL seals the active segment and opens
	// the next one; an erroring hook makes rotation — and therefore the
	// snapshot cut that wanted it — fail while the log keeps appending.
	WALRotate Point = "wal/rotate"
	// IngestAccept fires in the binary ingest server after a batch frame
	// is fully read and decoded but before it is appended to the WAL; an
	// erroring hook drops the connection without an ack, exactly what a
	// kill -9 between receive and append looks like to the client.
	IngestAccept Point = "ingest/accept"
	// CheckpointShip fires in the HTTP checkpoint handler after the image
	// is built but before it is written to the response; an erroring hook
	// tears the shipment (half the image is sent under the full declared
	// length), exactly what a site crashing mid-transfer looks like to a
	// cluster coordinator.
	CheckpointShip Point = "server/checkpoint"
	// CoordCommit fires in the cluster gatherer after every partition has
	// been collected but before the merged view is committed; a panicking
	// hook simulates the coordinator dying between Collect and Commit, an
	// erroring hook aborts the commit while the process survives. Either
	// way the previous committed view must keep serving.
	CoordCommit Point = "cluster/commit"
)

// Hook is one activated fault. arg carries site context — the shard index
// for pipeline points, zero elsewhere. A hook may return an error to
// inject, sleep to inject latency, or panic to inject a crash.
type Hook func(arg int) error

type table map[Point]Hook

var (
	mu    sync.Mutex // serializes Activate/deactivate
	hooks atomic.Pointer[table]
)

// Inject fires the hook activated at p, if any. With no hooks active it
// is a nil-op: one atomic load, no allocation, no branch beyond the nil
// check — cheap enough to leave in per-batch (not per-item) hot paths.
func Inject(p Point, arg int) error {
	t := hooks.Load()
	if t == nil {
		return nil
	}
	h, ok := (*t)[p]
	if !ok {
		return nil
	}
	return h(arg)
}

// Active reports whether a hook is activated at p.
func Active(p Point) bool {
	t := hooks.Load()
	if t == nil {
		return false
	}
	_, ok := (*t)[p]
	return ok
}

// Activate installs h at p and returns the function that removes it.
// Callers (tests) must invoke the returned deactivate, typically via
// t.Cleanup. Activating a point twice replaces the hook; either
// deactivate then clears it.
func Activate(p Point, h Hook) (deactivate func()) {
	set(p, h)
	return func() { set(p, nil) }
}

// set installs (h != nil) or clears (h == nil) the hook at p by swapping
// in a fresh table, so Inject never sees a map mid-mutation.
func set(p Point, h Hook) {
	mu.Lock()
	defer mu.Unlock()
	next := make(table)
	if t := hooks.Load(); t != nil {
		for k, v := range *t {
			next[k] = v
		}
	}
	if h == nil {
		delete(next, p)
	} else {
		next[p] = h
	}
	if len(next) == 0 {
		hooks.Store(nil)
		return
	}
	hooks.Store(&next)
}
