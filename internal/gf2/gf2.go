// Package gf2 provides incremental Gaussian elimination over GF(2) for
// systems with up to 64 unknowns. It is the decoding substrate for the
// fountain-coded item IDs in the PIE baseline (package pie): every clean
// Space-Time Bloom Filter cell contributes linear equations over the bits
// of the unknown 64-bit item ID, and the ID is recovered once the system
// reaches full rank.
package gf2

import "math/bits"

// System is an incrementally-built linear system a·x = b over GF(2), with
// x an unknown 64-bit vector. The zero value is ready to use.
type System struct {
	// rows[p] holds the stored equation whose highest set bit (pivot) is p;
	// mask 0 means no equation with that pivot yet.
	rows [64]row
	rank int
}

type row struct {
	mask uint64
	rhs  uint8
}

// Rank reports the number of linearly independent equations absorbed.
func (s *System) Rank() int { return s.rank }

// Add absorbs the equation mask·x = rhs (rhs is a single bit). It returns
// false if the equation contradicts the system (inconsistent), true
// otherwise. Redundant (dependent, consistent) equations are accepted and
// leave the rank unchanged.
func (s *System) Add(mask uint64, rhs uint8) bool {
	rhs &= 1
	for mask != 0 {
		p := 63 - bits.LeadingZeros64(mask)
		if s.rows[p].mask == 0 {
			s.rows[p] = row{mask, rhs}
			s.rank++
			return true
		}
		mask ^= s.rows[p].mask
		rhs ^= s.rows[p].rhs
	}
	return rhs == 0
}

// Full reports whether the system determines all 64 bits.
func (s *System) Full() bool { return s.rank == 64 }

// Solve returns the unique solution if the system has full rank.
func (s *System) Solve() (uint64, bool) {
	if s.rank != 64 {
		return 0, false
	}
	var x uint64
	for p := 0; p < 64; p++ {
		r := s.rows[p]
		b := r.rhs
		// All non-pivot bits of r.mask are < p, already solved.
		if bits.OnesCount64(r.mask&^(1<<uint(p))&x)%2 == 1 {
			b ^= 1
		}
		if b == 1 {
			x |= 1 << uint(p)
		}
	}
	return x, true
}

// Reset clears the system for reuse.
func (s *System) Reset() {
	s.rows = [64]row{}
	s.rank = 0
}

// Eval computes mask·x over GF(2) — the parity of the masked bits. Encoders
// use it to produce code symbols; tests use it to verify solutions.
func Eval(mask, x uint64) uint8 {
	return uint8(bits.OnesCount64(mask&x) & 1)
}
