package gf2

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveRecoversRandomVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		secret := rng.Uint64()
		var s System
		for !s.Full() {
			mask := rng.Uint64()
			if !s.Add(mask, Eval(mask, secret)) {
				t.Fatal("consistent equation rejected")
			}
		}
		got, ok := s.Solve()
		if !ok || got != secret {
			t.Fatalf("trial %d: got %x ok=%v, want %x", trial, got, ok, secret)
		}
	}
}

func TestRankGrowsOnlyOnIndependent(t *testing.T) {
	var s System
	if !s.Add(0b1, 1) || s.Rank() != 1 {
		t.Fatal("first equation must raise rank to 1")
	}
	// Same equation again: consistent, redundant.
	if !s.Add(0b1, 1) || s.Rank() != 1 {
		t.Fatal("duplicate equation must be accepted without raising rank")
	}
	// Contradiction.
	if s.Add(0b1, 0) {
		t.Fatal("contradictory equation must be rejected")
	}
	if !s.Add(0b10, 0) || s.Rank() != 2 {
		t.Fatal("independent equation must raise rank")
	}
	// Linear combination: x0 ^ x1 = 1 ^ 0 = 1.
	if !s.Add(0b11, 1) || s.Rank() != 2 {
		t.Fatal("dependent consistent equation mishandled")
	}
	if s.Add(0b11, 0) {
		t.Fatal("dependent contradictory equation accepted")
	}
}

func TestSolveRequiresFullRank(t *testing.T) {
	var s System
	s.Add(1, 1)
	if _, ok := s.Solve(); ok {
		t.Fatal("Solve must fail below full rank")
	}
	if s.Full() {
		t.Fatal("rank 1 is not full")
	}
}

func TestZeroMaskEquations(t *testing.T) {
	var s System
	if !s.Add(0, 0) {
		t.Fatal("0 = 0 is consistent")
	}
	if s.Add(0, 1) {
		t.Fatal("0 = 1 is inconsistent")
	}
	if s.Rank() != 0 {
		t.Fatal("trivial equations must not change rank")
	}
}

func TestReset(t *testing.T) {
	var s System
	s.Add(0b101, 1)
	s.Reset()
	if s.Rank() != 0 {
		t.Fatal("Reset must clear rank")
	}
	// Previously contradictory equation now absorbable.
	if !s.Add(0b101, 0) {
		t.Fatal("post-reset system rejected fresh equation")
	}
}

func TestEval(t *testing.T) {
	if Eval(0b1011, 0b0011) != 0 { // two shared bits → even parity
		t.Fatal("Eval parity wrong")
	}
	if Eval(0b1011, 0b0001) != 1 {
		t.Fatal("Eval parity wrong")
	}
}

func TestSolutionSatisfiesAllEquationsProperty(t *testing.T) {
	// For any seed, feeding equations derived from a secret yields a
	// solution consistent with every fed equation.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		secret := rng.Uint64()
		var s System
		masks := make([]uint64, 0, 80)
		for i := 0; i < 80; i++ {
			m := rng.Uint64()
			masks = append(masks, m)
			if !s.Add(m, Eval(m, secret)) {
				return false
			}
		}
		x, ok := s.Solve()
		if !ok {
			// 80 random equations fail to reach rank 64 with probability
			// ≈ 2^-16; treat as vacuous success.
			return true
		}
		for _, m := range masks {
			if Eval(m, x) != Eval(m, secret) {
				return false
			}
		}
		return x == secret
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestNoisyEquationsDetected(t *testing.T) {
	// With enough clean equations absorbed first, a corrupted equation is
	// almost surely inconsistent and must be flagged.
	rng := rand.New(rand.NewSource(3))
	secret := rng.Uint64()
	var s System
	for !s.Full() {
		m := rng.Uint64()
		s.Add(m, Eval(m, secret))
	}
	detected := 0
	for i := 0; i < 100; i++ {
		m := rng.Uint64()
		if !s.Add(m, Eval(m, secret)^1) {
			detected++
		}
	}
	if detected != 100 {
		t.Fatalf("only %d/100 corrupted equations detected at full rank", detected)
	}
}

func BenchmarkAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	secret := rng.Uint64()
	masks := make([]uint64, 128)
	for i := range masks {
		masks[i] = rng.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var s System
		for _, m := range masks {
			s.Add(m, Eval(m, secret))
		}
	}
}
