package adapters

import (
	"testing"

	"sigstream/internal/stream"
	"sigstream/internal/trackertest"
)

func TestTrackerContractPersistent(t *testing.T) {
	trackertest.Run(t, func(mem int) stream.Tracker {
		return NewPersistent(CUFactory(), mem, 50, 1)
	}, trackertest.Options{PersistencyOnly: true})
}

func TestTrackerContractSignificant(t *testing.T) {
	trackertest.Run(t, func(mem int) stream.Tracker {
		return NewSignificant(CUFactory(), mem, 50, stream.Balanced)
	}, trackertest.Options{})
}
