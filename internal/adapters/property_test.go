package adapters

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sigstream/internal/stream"
)

// TestPersistentNeverExceedsPeriods: for any arrival pattern, the reported
// persistency of a tracked item never exceeds the number of periods (CM/CU
// never underestimate per-period dedup'd counts, but they cannot invent
// periods beyond the stream's length since each period adds at most one).
func TestPersistentNeverExceedsPeriodsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewPersistent(CUFactory(), 32*1024, 20, 1)
		periods := 3 + rng.Intn(10)
		for per := 0; per < periods; per++ {
			n := rng.Intn(200)
			for i := 0; i < n; i++ {
				p.Insert(stream.Item(rng.Intn(100)))
			}
			p.EndPeriod()
		}
		for _, e := range p.TopK(100) {
			// Sketch collisions can inflate, but never beyond the number of
			// periods times the number of colliding items... the heap value
			// itself is bounded by periods when the BF dedup works and the
			// sketch is ample (32 KiB for ≤100 items ⇒ no collisions).
			if e.Persistency > uint64(periods) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestSignificantFrequencyAtLeastPersistency: with ample sketch width,
// f̂ ≥ p̂ for every item (an item appears at least once per counted period).
func TestSignificantFrequencyAtLeastPersistency(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := NewSignificant(CUFactory(), 256*1024, 20, stream.Balanced)
	for per := 0; per < 8; per++ {
		for i := 0; i < 300; i++ {
			s.Insert(stream.Item(rng.Intn(50)))
		}
		s.EndPeriod()
	}
	for i := stream.Item(0); i < 50; i++ {
		e, ok := s.Query(i)
		if !ok {
			continue
		}
		if e.Frequency < e.Persistency {
			t.Fatalf("item %d: f=%d < p=%d with ample sketches",
				i, e.Frequency, e.Persistency)
		}
	}
}

// TestPersistentBloomReusePath exercises many periods so the Bloom filter
// reset path runs repeatedly without cross-period leakage.
func TestPersistentBloomResetNoLeak(t *testing.T) {
	p := NewPersistent(CMFactory(), 64*1024, 10, 1)
	// Item appears only in even periods; odd periods are busy with other
	// items that would collide if the BF leaked.
	for per := 0; per < 20; per++ {
		if per%2 == 0 {
			p.Insert(7)
		}
		for i := 0; i < 50; i++ {
			p.Insert(stream.Item(1000 + i))
		}
		p.EndPeriod()
	}
	e, ok := p.Query(7)
	if !ok {
		t.Fatal("item lost")
	}
	if e.Persistency != 10 {
		t.Fatalf("persistency %d, want 10 (even periods only)", e.Persistency)
	}
}
