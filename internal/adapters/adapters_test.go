package adapters

import (
	"testing"

	"sigstream/internal/gen"
	"sigstream/internal/metrics"
	"sigstream/internal/oracle"
	"sigstream/internal/stream"
)

func TestPersistentCountsPeriodsNotArrivals(t *testing.T) {
	p := NewPersistent(CUFactory(), 64*1024, 10, 1)
	// 100 arrivals in each of 4 periods → persistency 4, not 400.
	for per := 0; per < 4; per++ {
		for i := 0; i < 100; i++ {
			p.Insert(7)
		}
		p.EndPeriod()
	}
	e, ok := p.Query(7)
	if !ok {
		t.Fatal("item lost")
	}
	if e.Persistency != 4 {
		t.Fatalf("persistency = %d, want 4", e.Persistency)
	}
}

func TestPersistentSkippedPeriods(t *testing.T) {
	p := NewPersistent(CMFactory(), 64*1024, 10, 1)
	for per := 0; per < 6; per++ {
		if per%2 == 0 {
			p.Insert(7)
		}
		p.Insert(stream.Item(100 + per))
		p.EndPeriod()
	}
	e, _ := p.Query(7)
	if e.Persistency != 3 {
		t.Fatalf("persistency = %d, want 3", e.Persistency)
	}
}

func TestPersistentTopKOnWorkload(t *testing.T) {
	s := gen.Generate(gen.Config{N: 40000, M: 2000, Periods: 40, Skew: 0.9,
		Head: 50, TailWindowFrac: 0.15, Seed: 8})
	o := oracle.FromStream(s, stream.Persistent)
	for _, f := range []Factory{CMFactory(), CUFactory(), CountFactory()} {
		p := NewPersistent(f, 64*1024, 100, 1)
		s.Replay(p)
		r := metrics.Evaluate(o, p, 50)
		if r.Precision < 0.4 {
			t.Fatalf("%s precision %.2f implausibly low with ample memory",
				p.Name(), r.Precision)
		}
	}
}

func TestPersistentNames(t *testing.T) {
	if got := NewPersistent(CMFactory(), 1024, 4, 1).Name(); got != "CM+BF" {
		t.Fatalf("name = %q, want CM+BF", got)
	}
	if got := NewPersistent(CountFactory(), 1024, 4, 1).Name(); got != "Count+BF" {
		t.Fatalf("name = %q, want Count+BF", got)
	}
}

func TestPersistentQueryMissing(t *testing.T) {
	p := NewPersistent(CMFactory(), 8*1024, 4, 1)
	if _, ok := p.Query(999); ok {
		t.Fatal("missing item reported present")
	}
}

func TestSignificantTracksBothComponents(t *testing.T) {
	s := NewSignificant(CUFactory(), 128*1024, 10, stream.Balanced)
	for per := 0; per < 3; per++ {
		for i := 0; i < 5; i++ {
			s.Insert(7)
		}
		s.EndPeriod()
	}
	e, ok := s.Query(7)
	if !ok {
		t.Fatal("item lost")
	}
	if e.Frequency != 15 {
		t.Fatalf("frequency = %d, want 15", e.Frequency)
	}
	if e.Persistency != 3 {
		t.Fatalf("persistency = %d, want 3", e.Persistency)
	}
	if want := stream.Balanced.Significance(15, 3); e.Significance != want {
		t.Fatalf("significance = %v, want %v", e.Significance, want)
	}
}

func TestSignificantWeightsChangeRanking(t *testing.T) {
	// Item A: frequency 100, 1 period. Item B: frequency 10, 10 periods.
	build := func(w stream.Weights) *Significant {
		s := NewSignificant(CUFactory(), 256*1024, 4, w)
		for per := 0; per < 10; per++ {
			if per == 0 {
				for i := 0; i < 100; i++ {
					s.Insert(1)
				}
			}
			s.Insert(2)
			s.EndPeriod()
		}
		return s
	}
	freqHeavy := build(stream.Weights{Alpha: 10, Beta: 1})
	if top := freqHeavy.TopK(1); top[0].Item != 1 {
		t.Fatalf("α≫β should rank the burst first, got item %d", top[0].Item)
	}
	persHeavy := build(stream.Weights{Alpha: 0, Beta: 1})
	if top := persHeavy.TopK(1); top[0].Item != 2 {
		t.Fatalf("β-only should rank the persistent item first, got item %d", top[0].Item)
	}
}

func TestSignificantTopKOnWorkload(t *testing.T) {
	s := gen.Generate(gen.Config{N: 40000, M: 2000, Periods: 40, Skew: 1.0,
		Head: 50, TailWindowFrac: 0.2, Seed: 12})
	o := oracle.FromStream(s, stream.Balanced)
	sig := NewSignificant(CUFactory(), 128*1024, 100, stream.Balanced)
	s.Replay(sig)
	r := metrics.Evaluate(o, sig, 50)
	if r.Precision < 0.4 {
		t.Fatalf("CU-sig precision %.2f implausibly low with ample memory", r.Precision)
	}
}

func TestSignificantName(t *testing.T) {
	if got := NewSignificant(CMFactory(), 1024, 4, stream.Balanced).Name(); got != "CM-sig" {
		t.Fatalf("name = %q, want CM-sig", got)
	}
}

func TestSignificantQueryMissing(t *testing.T) {
	s := NewSignificant(CMFactory(), 8*1024, 4, stream.Balanced)
	if _, ok := s.Query(31337); ok {
		t.Fatal("missing item reported present")
	}
}

func TestMemoryAccounting(t *testing.T) {
	p := NewPersistent(CMFactory(), 64*1024, 100, 1)
	if p.MemoryBytes() <= 0 || p.MemoryBytes() > 80*1024 {
		t.Fatalf("persistent memory %d far from budget", p.MemoryBytes())
	}
	s := NewSignificant(CMFactory(), 64*1024, 100, stream.Balanced)
	if s.MemoryBytes() <= 0 || s.MemoryBytes() > 80*1024 {
		t.Fatalf("significant memory %d far from budget", s.MemoryBytes())
	}
}

func TestTinyBudgetsDoNotPanic(t *testing.T) {
	p := NewPersistent(CMFactory(), 8, 100, 1)
	s := NewSignificant(CUFactory(), 8, 100, stream.Balanced)
	for i := 0; i < 100; i++ {
		p.Insert(stream.Item(i))
		s.Insert(stream.Item(i))
	}
	p.EndPeriod()
	s.EndPeriod()
}

func BenchmarkPersistentInsert(b *testing.B) {
	p := NewPersistent(CUFactory(), 64*1024, 100, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Insert(stream.Item(i % 10000))
		if i%10000 == 9999 {
			p.EndPeriod()
		}
	}
}

func BenchmarkSignificantInsert(b *testing.B) {
	s := NewSignificant(CUFactory(), 64*1024, 100, stream.Balanced)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(stream.Item(i % 10000))
		if i%10000 == 9999 {
			s.EndPeriod()
		}
	}
}
