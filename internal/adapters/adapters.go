// Package adapters assembles the paper's composite baselines: sketch-based
// trackers for top-k persistent items (sketch + per-period Bloom filter +
// min-heap, Section II-B) and for top-k significant items (a frequency
// sketch and a persistency structure sharing the memory evenly, Section
// V-C/V-H).
package adapters

import (
	"sigstream/internal/bloom"
	"sigstream/internal/cmsketch"
	"sigstream/internal/countsketch"
	"sigstream/internal/stream"
	"sigstream/internal/topk"
)

// FreqSketch is the estimator contract shared by CM, CU and Count sketches.
type FreqSketch interface {
	Add(item stream.Item, delta uint64)
	Estimate(item stream.Item) uint64
	MemoryBytes() int
}

// Factory constructs a sketch from a memory budget.
type Factory struct {
	Label string
	New   func(memoryBytes int) FreqSketch
}

// CMFactory builds Count-Min sketches.
func CMFactory() Factory {
	return Factory{Label: "CM", New: func(m int) FreqSketch {
		return cmsketch.New(cmsketch.CM, m, cmsketch.DefaultRows)
	}}
}

// CUFactory builds CU (conservative update) sketches.
func CUFactory() Factory {
	return Factory{Label: "CU", New: func(m int) FreqSketch {
		return cmsketch.New(cmsketch.CU, m, cmsketch.DefaultRows)
	}}
}

// CountFactory builds Count sketches.
func CountFactory() Factory {
	return Factory{Label: "Count", New: func(m int) FreqSketch {
		return countsketch.New(m, countsketch.DefaultRows)
	}}
}

// Persistent is the paper's sketch-based top-k persistent-items baseline:
// half the memory holds a standard Bloom filter recording which items have
// appeared in the current period; the other half holds the sketch (counting
// periods, not arrivals) and the top-k min-heap. The Bloom filter is reset
// at every period boundary.
type Persistent struct {
	label  string
	beta   float64
	bf     *bloom.Filter
	sketch FreqSketch
	heap   *topk.Heap
}

// NewPersistent builds the baseline from a total memory budget.
func NewPersistent(f Factory, memoryBytes, k int, beta float64) *Persistent {
	half := memoryBytes / 2
	heapBytes := k * topk.EntryBytes
	sketchBytes := memoryBytes - half - heapBytes
	if sketchBytes < 16 {
		sketchBytes = 16
	}
	return &Persistent{
		label:  f.Label + "+BF",
		beta:   beta,
		bf:     bloom.New(half, 3),
		sketch: f.New(sketchBytes),
		heap:   topk.New(k),
	}
}

// Insert records one arrival; persistency advances only on the first
// arrival of the item within the current period.
func (p *Persistent) Insert(item stream.Item) {
	if p.bf.AddIfAbsent(item) {
		p.sketch.Add(item, 1)
		est := p.beta * float64(p.sketch.Estimate(item))
		p.heap.Offer(item, est)
	}
}

// EndPeriod resets the per-period Bloom filter.
func (p *Persistent) EndPeriod() { p.bf.Reset() }

// Query reports the heap value if tracked, else the sketch estimate.
func (p *Persistent) Query(item stream.Item) (stream.Entry, bool) {
	if v, ok := p.heap.Value(item); ok {
		return stream.Entry{Item: item, Persistency: uint64(v / nonzero(p.beta)),
			Significance: v}, true
	}
	est := p.sketch.Estimate(item)
	if est == 0 {
		return stream.Entry{}, false
	}
	return stream.Entry{Item: item, Persistency: est,
		Significance: p.beta * float64(est)}, true
}

// TopK reports the heap's best k items.
func (p *Persistent) TopK(k int) []stream.Entry {
	es := p.heap.TopK(k)
	for i := range es {
		es[i].Persistency = uint64(es[i].Significance / nonzero(p.beta))
	}
	return es
}

// MemoryBytes reports the assembled footprint.
func (p *Persistent) MemoryBytes() int {
	return p.bf.MemoryBytes() + p.sketch.MemoryBytes() + p.heap.MemoryBytes()
}

// Name identifies the combination (e.g. "CU+BF").
func (p *Persistent) Name() string { return p.label }

// Significant is the paper's Section V-H baseline for top-k significant
// items: a frequency sketch and a persistency structure (Bloom filter +
// period sketch) splitting the memory evenly, with one min-heap ranking
// items by estimated significance α·f̂ + β·p̂.
type Significant struct {
	label   string
	weights stream.Weights
	fsk     FreqSketch
	psk     FreqSketch
	bf      *bloom.Filter
	heap    *topk.Heap
}

// NewSignificant builds the baseline from a total memory budget.
func NewSignificant(f Factory, memoryBytes, k int, w stream.Weights) *Significant {
	half := memoryBytes / 2
	heapBytes := k * topk.EntryBytes
	freqBytes := half - heapBytes
	if freqBytes < 16 {
		freqBytes = 16
	}
	quarter := (memoryBytes - half) / 2
	if quarter < 16 {
		quarter = 16
	}
	return &Significant{
		label:   f.Label + "-sig",
		weights: w,
		fsk:     f.New(freqBytes),
		psk:     f.New(quarter),
		bf:      bloom.New(quarter, 3),
		heap:    topk.New(k),
	}
}

// Insert records one arrival in the frequency sketch, advances the
// persistency sketch on first appearance in the period, and refreshes the
// significance heap.
func (s *Significant) Insert(item stream.Item) {
	s.fsk.Add(item, 1)
	if s.bf.AddIfAbsent(item) {
		s.psk.Add(item, 1)
	}
	s.heap.Offer(item, s.significance(item))
}

// EndPeriod resets the per-period Bloom filter.
func (s *Significant) EndPeriod() { s.bf.Reset() }

func (s *Significant) significance(item stream.Item) float64 {
	return s.weights.Significance(s.fsk.Estimate(item), s.psk.Estimate(item))
}

// Query reports sketch-derived estimates for item.
func (s *Significant) Query(item stream.Item) (stream.Entry, bool) {
	f := s.fsk.Estimate(item)
	p := s.psk.Estimate(item)
	if f == 0 && p == 0 {
		return stream.Entry{}, false
	}
	return stream.Entry{Item: item, Frequency: f, Persistency: p,
		Significance: s.weights.Significance(f, p)}, true
}

// TopK reports the heap's best k items with sketch-derived components.
func (s *Significant) TopK(k int) []stream.Entry {
	es := s.heap.TopK(k)
	for i := range es {
		es[i].Frequency = s.fsk.Estimate(es[i].Item)
		es[i].Persistency = s.psk.Estimate(es[i].Item)
	}
	return es
}

// MemoryBytes reports the assembled footprint.
func (s *Significant) MemoryBytes() int {
	return s.fsk.MemoryBytes() + s.psk.MemoryBytes() + s.bf.MemoryBytes() +
		s.heap.MemoryBytes()
}

// Name identifies the combination (e.g. "CU-sig").
func (s *Significant) Name() string { return s.label }

func nonzero(a float64) float64 {
	if a == 0 {
		return 1
	}
	return a
}

var (
	_ stream.Tracker = (*Persistent)(nil)
	_ stream.Tracker = (*Significant)(nil)
)
