// Package misragries implements the Misra-Gries "Frequent" algorithm, the
// classical ancestor of the paper's counter-based baselines. It is included
// as an extension: Space-Saving (which the paper evaluates) is the
// increment-on-replace refinement of this decrement-on-collision scheme,
// and having both makes the replacement-policy ablation complete.
//
// Misra-Gries keeps k counters. A tracked arrival increments its counter;
// an untracked arrival with a free slot claims it; an untracked arrival
// with all slots busy decrements every counter by one, freeing slots whose
// counters reach zero. Estimates never overestimate... they UNDERestimate
// by at most N/(k+1).
package misragries

import (
	"sigstream/internal/stream"
)

// EntryBytes is the accounted memory per counter: 8-byte ID, 8-byte count,
// map overhead amortized to 8 bytes.
const EntryBytes = 24

// MG is a Misra-Gries summary.
type MG struct {
	capacity int
	alpha    float64
	counts   map[stream.Item]uint64
}

// New sizes a summary from a memory budget. alpha scales reported
// significance (frequency weight).
func New(memoryBytes int, alpha float64) *MG {
	capacity := memoryBytes / EntryBytes
	if capacity < 1 {
		capacity = 1
	}
	return NewCapacity(capacity, alpha)
}

// NewCapacity creates a summary with an explicit counter count.
func NewCapacity(capacity int, alpha float64) *MG {
	if capacity < 1 {
		capacity = 1
	}
	return &MG{
		capacity: capacity,
		alpha:    alpha,
		counts:   make(map[stream.Item]uint64, capacity),
	}
}

// Capacity reports the number of counters.
func (m *MG) Capacity() int { return m.capacity }

// MemoryBytes reports the accounted footprint.
func (m *MG) MemoryBytes() int { return m.capacity * EntryBytes }

// Name identifies the algorithm.
func (m *MG) Name() string { return "MisraGries" }

// Insert records one arrival.
func (m *MG) Insert(item stream.Item) {
	if _, ok := m.counts[item]; ok {
		m.counts[item]++
		return
	}
	if len(m.counts) < m.capacity {
		m.counts[item] = 1
		return
	}
	// Decrement everything; drop zeros. The arrival itself is discarded.
	for it, c := range m.counts {
		if c <= 1 {
			delete(m.counts, it)
		} else {
			m.counts[it] = c - 1
		}
	}
}

// EndPeriod is a no-op: Misra-Gries has no notion of periods.
func (m *MG) EndPeriod() {}

// Query reports the estimate for item.
func (m *MG) Query(item stream.Item) (stream.Entry, bool) {
	c, ok := m.counts[item]
	if !ok {
		return stream.Entry{}, false
	}
	return m.entry(item, c), true
}

// TopK reports the k tracked items with the largest counts.
func (m *MG) TopK(k int) []stream.Entry {
	es := make([]stream.Entry, 0, len(m.counts))
	for item, c := range m.counts {
		es = append(es, m.entry(item, c))
	}
	return stream.TopKFromEntries(es, k)
}

func (m *MG) entry(item stream.Item, c uint64) stream.Entry {
	return stream.Entry{
		Item:         item,
		Frequency:    c,
		Significance: m.alpha * float64(c),
	}
}

var _ stream.Tracker = (*MG)(nil)
