package misragries

import (
	"math/rand"
	"testing"

	"sigstream/internal/gen"
	"sigstream/internal/metrics"
	"sigstream/internal/oracle"
	"sigstream/internal/stream"
)

func TestExactUnderCapacity(t *testing.T) {
	m := NewCapacity(10, 1)
	for i := 0; i < 7; i++ {
		m.Insert(1)
	}
	m.Insert(2)
	e, ok := m.Query(1)
	if !ok || e.Frequency != 7 {
		t.Fatalf("item 1: %+v ok=%v, want f=7", e, ok)
	}
}

func TestDecrementOnCollision(t *testing.T) {
	// Capacity 2: a=3, b=1. Inserting c decrements both and discards c;
	// b reaches zero and is freed.
	m := NewCapacity(2, 1)
	m.Insert(10)
	m.Insert(10)
	m.Insert(10)
	m.Insert(20)
	m.Insert(30)
	if _, ok := m.Query(30); ok {
		t.Fatal("colliding arrival must be discarded, not inserted")
	}
	if _, ok := m.Query(20); ok {
		t.Fatal("decremented-to-zero item must be dropped")
	}
	e, _ := m.Query(10)
	if e.Frequency != 2 {
		t.Fatalf("survivor count %d, want 2", e.Frequency)
	}
	// The freed slot admits the next newcomer.
	m.Insert(40)
	if _, ok := m.Query(40); !ok {
		t.Fatal("freed slot not reused")
	}
}

func TestNeverOverestimatesAndBoundedUndercount(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	truth := map[stream.Item]uint64{}
	const capacity = 50
	m := NewCapacity(capacity, 1)
	const n = 20000
	for i := 0; i < n; i++ {
		item := stream.Item(rng.Intn(500))
		truth[item]++
		m.Insert(item)
	}
	bound := uint64(n/(capacity+1)) + 1
	for item, f := range truth {
		e, ok := m.Query(item)
		if !ok {
			continue
		}
		if e.Frequency > f {
			t.Fatalf("item %d: overestimate %d > %d", item, e.Frequency, f)
		}
		if f-e.Frequency > bound {
			t.Fatalf("item %d: undercount %d exceeds N/(k+1) bound %d",
				item, f-e.Frequency, bound)
		}
	}
}

func TestHeadPrecisionOnZipf(t *testing.T) {
	st := gen.Generate(gen.Config{N: 50000, M: 5000, Periods: 1, Skew: 1.2,
		Head: 100, TailWindowFrac: 1, Seed: 3})
	o := oracle.FromStream(st, stream.Frequent)
	m := NewCapacity(500, 1)
	st.Replay(m)
	r := metrics.Evaluate(o, m, 50)
	if r.Precision < 0.6 {
		t.Fatalf("Misra-Gries precision %.2f on easy Zipf head", r.Precision)
	}
}

func TestSizing(t *testing.T) {
	m := New(2400, 1)
	if m.Capacity() != 100 {
		t.Fatalf("capacity %d, want 100", m.Capacity())
	}
	if m.MemoryBytes() != 2400 {
		t.Fatalf("memory %d, want 2400", m.MemoryBytes())
	}
	if New(1, 1).Capacity() != 1 {
		t.Fatal("capacity must floor at 1")
	}
	if m.Name() != "MisraGries" {
		t.Fatal("wrong name")
	}
}
