package theory

import (
	"math"
	"testing"

	"sigstream/internal/gen"
	"sigstream/internal/ltc"
	"sigstream/internal/oracle"
	"sigstream/internal/stream"
)

func model(w int) Model {
	return Model{N: 100000, M: 10000, Gamma: 1.0, W: w, D: 8, Alpha: 1, Beta: 0}
}

func TestBinom(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {7, 3, 35}, {3, 4, 0}, {3, -1, 0},
	}
	for _, c := range cases {
		if got := binom(c.n, c.k); got != c.want {
			t.Errorf("binom(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestCorrectRateInUnitInterval(t *testing.T) {
	m := model(500)
	for _, rank := range []int{0, 10, 100, 5000} {
		p := m.CorrectRate(rank)
		if p < 0 || p > 1 {
			t.Fatalf("rank %d: bound %v outside [0,1]", rank, p)
		}
	}
	if m.CorrectRate(-1) != 0 || m.CorrectRate(1<<20) != 0 {
		t.Fatal("out-of-range ranks must yield 0")
	}
}

func TestCorrectRateMonotoneInMemory(t *testing.T) {
	// More buckets (more memory) → fewer collisions → higher bound.
	small := model(100).AverageCorrectRate(100)
	large := model(2000).AverageCorrectRate(100)
	if large <= small {
		t.Fatalf("bound not increasing with memory: w=100 → %.4f, w=2000 → %.4f",
			small, large)
	}
}

func TestCorrectRateHigherForHotterItems(t *testing.T) {
	m := model(500)
	if m.CorrectRate(0) < m.CorrectRate(2000) {
		t.Fatalf("rank 0 bound %.4f below rank 2000 bound %.4f",
			m.CorrectRate(0), m.CorrectRate(2000))
	}
}

func TestCorrectRateDegenerateD(t *testing.T) {
	m := model(500)
	m.D = 1
	if m.CorrectRate(0) != 0 {
		t.Fatal("d=1 bound must be 0 (no slack cells)")
	}
}

func TestPSmallInUnitInterval(t *testing.T) {
	for _, w := range []int{1, 2, 10, 1000} {
		m := model(w)
		p := m.PSmall()
		if p <= 0 || p > 1 {
			t.Fatalf("w=%d: PSmall = %v outside (0,1]", w, p)
		}
	}
}

func TestExpectedVDecreasesWithRankAndMemory(t *testing.T) {
	m := model(500)
	if m.ExpectedV(0) <= m.ExpectedV(100) {
		t.Fatal("E(V) must shrink for lower ranks (fewer smaller items)")
	}
	m2 := model(5000)
	if m2.ExpectedV(0) >= m.ExpectedV(0) {
		t.Fatal("E(V) must shrink with more buckets")
	}
}

func TestErrorBoundClampedAndMonotone(t *testing.T) {
	m := model(200)
	if b := m.ErrorBound(0, 1e-12); b != 1 {
		t.Fatalf("tiny ε must clamp the bound to 1, got %v", b)
	}
	if b := m.ErrorBound(0, 0); b != 1 {
		t.Fatal("ε=0 must yield 1")
	}
	loose := m.ErrorBound(500, 1.0/(1<<10))
	tight := model(2000).ErrorBound(500, 1.0/(1<<10))
	if tight > loose {
		t.Fatalf("bound not decreasing with memory: %.5f → %.5f", loose, tight)
	}
}

func TestAverageErrorBoundMatchesPerRank(t *testing.T) {
	m := model(300)
	eps := math.Pow(2, -14)
	avg := m.AverageErrorBound(10, eps)
	manual := 0.0
	for r := 0; r < 10; r++ {
		manual += m.ErrorBound(r, eps)
	}
	manual /= 10
	if math.Abs(avg-manual) > 1e-9 {
		t.Fatalf("AverageErrorBound %.6f != mean of ErrorBound %.6f", avg, manual)
	}
}

// TestFig7aBoundBelowMeasured is the Fig 7(a) check in miniature: the
// theoretical correct-rate bound must sit at or below the measured correct
// rate of LTC (no-LTR, DE on — the analyzed configuration) on a Zipf
// stream.
func TestFig7aBoundBelowMeasured(t *testing.T) {
	const (
		n     = 200000
		mDist = 20000
		k     = 200
	)
	s := gen.ZipfStream(n, mDist, 20, 1.0, 42)
	o := oracle.FromStream(s, stream.Frequent)
	for _, mem := range []int{16 * 1024, 64 * 1024} {
		l := ltc.New(ltc.Options{MemoryBytes: mem, Weights: stream.Frequent,
			DisableLongTailReplacement: true,
			ItemsPerPeriod:             s.ItemsPerPeriod(), Seed: 5})
		s.Replay(l)
		// Measured correct rate: fraction of the true top-k whose reported
		// significance is exact.
		correct := 0
		for _, e := range o.TopK(k) {
			got, ok := l.Query(e.Item)
			if ok && got.Frequency == e.Frequency {
				correct++
			}
		}
		measured := float64(correct) / k
		th := Model{N: n, M: mDist, Gamma: 1.0, W: l.Buckets(), D: l.BucketWidth(),
			Alpha: 1, Beta: 0}
		bound := th.AverageCorrectRate(k)
		if bound > measured+0.10 {
			t.Fatalf("mem %dKB: theoretical bound %.3f exceeds measured %.3f",
				mem/1024, bound, measured)
		}
	}
}

// TestFig7bBoundAboveMeasured is the Fig 7(b) check in miniature: the
// theoretical error bound must sit at or above the measured probability of
// an ε·N significance error.
func TestFig7bBoundAboveMeasured(t *testing.T) {
	const (
		n     = 200000
		mDist = 20000
		k     = 200
	)
	eps := math.Pow(2, -14)
	s := gen.ZipfStream(n, mDist, 20, 1.0, 43)
	o := oracle.FromStream(s, stream.Frequent)
	for _, mem := range []int{8 * 1024, 32 * 1024} {
		l := ltc.New(ltc.Options{MemoryBytes: mem, Weights: stream.Frequent,
			DisableLongTailReplacement: true,
			ItemsPerPeriod:             s.ItemsPerPeriod(), Seed: 6})
		s.Replay(l)
		exceed := 0
		for _, e := range o.TopK(k) {
			got, _ := l.Query(e.Item)
			if e.Significance-got.Significance >= eps*float64(n) {
				exceed++
			}
		}
		measured := float64(exceed) / k
		th := Model{N: n, M: mDist, Gamma: 1.0, W: l.Buckets(), D: l.BucketWidth(),
			Alpha: 1, Beta: 0}
		bound := th.AverageErrorBound(k, eps)
		if bound+1e-9 < measured {
			t.Fatalf("mem %dKB: theoretical bound %.4f below measured %.4f",
				mem/1024, bound, measured)
		}
	}
}

func TestSuggestW(t *testing.T) {
	m := Model{N: 1_000_000, M: 100_000, Gamma: 1.0, D: 8, Alpha: 1}
	w := m.SuggestW(100, 0.95, 1<<22)
	if w <= 0 {
		t.Fatal("no suggestion for a reachable target")
	}
	// The suggestion must actually reach the target...
	m.W = w
	if got := m.AverageCorrectRate(100); got < 0.95 {
		t.Fatalf("suggested w=%d only reaches %.3f", w, got)
	}
	// ...and be minimal-ish: half the buckets must miss it.
	m.W = w / 2
	if w > 2 && m.AverageCorrectRate(100) >= 0.95 {
		t.Fatalf("w=%d not minimal (w/2 also reaches target)", w)
	}
	// Unreachable target within a tiny cap returns 0.
	if got := (Model{N: 1_000_000, M: 100_000, Gamma: 1.0, D: 8, Alpha: 1}).
		SuggestW(100, 0.99, 4); got != 0 {
		t.Fatalf("capped search returned %d, want 0", got)
	}
	// Degenerate targets.
	if (Model{N: 1000, M: 100, Gamma: 1, D: 8}).SuggestW(10, 0, 100) != 1 {
		t.Fatal("target 0 must suggest the minimum")
	}
}
