// Package theory implements the paper's Section IV analysis: the
// correct-rate lower bound (Lemma IV.1, Eq 3–5) and the error upper bound
// (Eq 6–11) for LTC under a Zipfian stream model. The Fig 7 experiments
// check these formulas against measured values.
package theory

import (
	"math"

	"sigstream/internal/gen"
)

// Model describes the analytic stream and structure parameters.
type Model struct {
	N     int     // stream length
	M     int     // distinct items
	Gamma float64 // Zipf skew γ
	W     int     // LTC buckets
	D     int     // LTC cells per bucket
	Alpha float64 // frequency weight
	Beta  float64 // persistency weight
}

// Frequencies returns the Eq 3 expected Zipf frequencies f_1 ≥ … ≥ f_M.
func (m Model) Frequencies() []float64 {
	return gen.ZipfFrequencies(m.N, m.M, m.Gamma)
}

// CorrectRate returns the Eq 4–5 lower bound on the probability that the
// reported significance of the item of the given zero-based rank is
// correct.
//
// π_i is the probability that item e_i is "useful" — mapped to the same
// bucket as e and ever ahead of it: π_i = 1/w when f_i > f, otherwise
// (1/w)·f_i/(f+1). The DP dp[j][x] counts the probability of exactly x
// useful items among the first j; the reported significance is certainly
// correct when fewer than d−1 items are useful.
func (m Model) CorrectRate(rank int) float64 {
	freqs := m.Frequencies()
	if rank < 0 || rank >= len(freqs) {
		return 0
	}
	return correctRate(freqs, rank, m.W, m.D)
}

func correctRate(freqs []float64, rank, w, d int) float64 {
	if d < 2 {
		// With a single cell per bucket any useful item breaks correctness;
		// the bound degenerates to the probability of zero useful items,
		// handled by the same DP with Σ over x ≤ d−2 = empty ⇒ 0.
		return 0
	}
	f := freqs[rank]
	// dp[x] = probability of exactly x useful items so far; x is capped at
	// d−1 (anything beyond cannot become correct again, and the cap keeps
	// the DP O(M·d)). Mass stuck at the cap is never counted.
	dp := make([]float64, d)
	dp[0] = 1
	invW := 1.0 / float64(w)
	for i, fi := range freqs {
		if i == rank {
			continue
		}
		var pi float64
		if fi > f {
			pi = invW
		} else {
			pi = invW * fi / (f + 1)
		}
		for x := d - 1; x >= 1; x-- {
			dp[x] = dp[x]*(1-pi) + dp[x-1]*pi
		}
		dp[0] *= 1 - pi
	}
	p := 0.0
	for x := 0; x <= d-2; x++ {
		p += dp[x]
	}
	// Guard against floating-point drift just past the probability range.
	if p > 1 {
		p = 1
	}
	if p < 0 {
		p = 0
	}
	return p
}

// AverageCorrectRate averages the CorrectRate bound over the top-k ranks —
// the quantity Fig 7(a) plots against memory.
func (m Model) AverageCorrectRate(k int) float64 {
	freqs := m.Frequencies()
	if k > len(freqs) {
		k = len(freqs)
	}
	if k <= 0 {
		return 0
	}
	total := 0.0
	for r := 0; r < k; r++ {
		total += correctRate(freqs, r, m.W, m.D)
	}
	return total / float64(k)
}

// PSmall returns the probability that a tracked item's cell is the smallest
// of its bucket when a decrement arrives.
//
// The paper's Eq 7 is partially garbled in the available text; this is the
// reconstruction documented in DESIGN.md §7: with i of the d−1 sibling
// cells holding comparable colliding items (each independently with
// probability 1/w), the tracked cell is the smallest of the i+1 contenders
// with probability 1/(i+1):
//
//	P_small = Σ_{i=0}^{d−1} C(d−1,i) (1/w)^i (1−1/w)^{d−1−i} / (i+1)
func (m Model) PSmall() float64 {
	w := float64(m.W)
	d := m.D
	p := 0.0
	for i := 0; i <= d-1; i++ {
		p += binom(d-1, i) * math.Pow(1/w, float64(i)) *
			math.Pow(1-1/w, float64(d-1-i)) / float64(i+1)
	}
	return p
}

// ExpectedV returns Eq 8: the expected number of items that can perform
// Significance Decrementing on the item of the given zero-based rank —
// items mapped to the same bucket (probability 1/w) that are less
// significant (ranks below it under the Zipf model).
func (m Model) ExpectedV(rank int) float64 {
	freqs := m.Frequencies()
	total := 0.0
	for j := rank + 1; j < len(freqs); j++ {
		total += freqs[j]
	}
	return total / float64(m.W)
}

// ExpectedDecrements returns Eq 9: E(X_i) = P_small · E(V).
func (m Model) ExpectedDecrements(rank int) float64 {
	return m.PSmall() * m.ExpectedV(rank)
}

// ErrorBound returns Eq 11: the Markov upper bound on
// Pr{s_i − ŝ_i ≥ ε·N} for the item of the given zero-based rank:
//
//	Pr ≤ P_small · E(V) · (α+β) / (ε·N)
//
// The result is clamped to [0, 1].
func (m Model) ErrorBound(rank int, eps float64) float64 {
	if eps <= 0 {
		return 1
	}
	b := m.ExpectedDecrements(rank) * (m.Alpha + m.Beta) / (eps * float64(m.N))
	if b > 1 {
		return 1
	}
	if b < 0 {
		return 0
	}
	return b
}

// AverageErrorBound averages ErrorBound over the top-k ranks — the
// quantity Fig 7(b) plots against memory.
func (m Model) AverageErrorBound(k int, eps float64) float64 {
	if k <= 0 {
		return 0
	}
	if k > m.M {
		k = m.M
	}
	// E(V) needs the suffix sums once; reuse via direct loop.
	freqs := m.Frequencies()
	suffix := 0.0
	suffixes := make([]float64, len(freqs)+1)
	for j := len(freqs) - 1; j >= 0; j-- {
		suffix += freqs[j]
		suffixes[j] = suffix
	}
	ps := m.PSmall()
	total := 0.0
	for r := 0; r < k; r++ {
		ev := suffixes[r+1] / float64(m.W)
		b := ps * ev * (m.Alpha + m.Beta) / (eps * float64(m.N))
		if b > 1 {
			b = 1
		}
		total += b
	}
	return total / float64(k)
}

// binom computes C(n, k) as a float64.
func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1.0
	for i := 0; i < k; i++ {
		r = r * float64(n-i) / float64(i+1)
	}
	return r
}

// SuggestW returns the smallest bucket count w whose correct-rate lower
// bound for the top-k items reaches target (0 < target < 1), by doubling
// then bisecting w. The other Model fields (N, M, Gamma, D) must be set;
// the receiver's W is ignored. Returns 0 if even wMax buckets cannot
// reach the target.
func (m Model) SuggestW(k int, target float64, wMax int) int {
	if target <= 0 {
		return 1
	}
	if target >= 1 {
		target = 0.999999
	}
	if wMax < 1 {
		wMax = 1 << 26 // 64M buckets ≈ 8 GiB at d=8; beyond advisory range
	}
	reach := func(w int) bool {
		mm := m
		mm.W = w
		return mm.AverageCorrectRate(k) >= target
	}
	lo, hi := 1, 1
	for !reach(hi) {
		if hi >= wMax {
			return 0
		}
		lo = hi
		hi *= 2
		if hi > wMax {
			hi = wMax
		}
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		if mid == lo {
			break
		}
		if reach(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}
