// Package stream defines the shared data-stream model: items, tracker
// entries, the Tracker interface implemented by every algorithm in this
// repository, and period-divided streams.
//
// Following the paper, a stream is divided into T equal-sized periods. An
// item's frequency is its total number of appearances; its persistency is
// the number of periods in which it appears at least once; its significance
// is α·frequency + β·persistency.
package stream

import (
	"fmt"
	"sort"
)

// Item is a 64-bit stream item identifier (e.g. a source IP, a user ID, a
// flow key hash).
type Item = uint64

// Entry is a tracker's estimate for one item.
type Entry struct {
	Item         Item
	Frequency    uint64  // estimated number of appearances
	Persistency  uint64  // estimated number of periods with ≥1 appearance
	Significance float64 // α·Frequency + β·Persistency under the tracker's weights
}

// Tracker is the interface implemented by every algorithm: LTC, the
// counter-based and sketch-based baselines, and PIE.
//
// The caller feeds arrivals with Insert and marks period boundaries with
// EndPeriod. After the stream (or at any point mid-stream), Query and TopK
// report estimates. EndPeriod must be called after the final period for the
// last period's appearances to count toward persistency.
type Tracker interface {
	// Insert records one arrival of item.
	Insert(item Item)
	// EndPeriod marks the boundary between two periods.
	EndPeriod()
	// Query returns the tracker's estimate for item, and whether the
	// tracker has any record of it.
	Query(item Item) (Entry, bool)
	// TopK returns up to k entries with the largest estimated
	// significance, in non-increasing order.
	TopK(k int) []Entry
	// MemoryBytes reports the memory footprint the structure was sized to.
	MemoryBytes() int
	// Name identifies the algorithm (for experiment output).
	Name() string
}

// BatchInserter is the optional bulk-ingestion extension of Tracker:
// trackers with a native batch path (LTC, the window tracker) implement it
// to amortize per-arrival overhead. InsertBatch(items) must be semantically
// identical to calling Insert for each item in order; only the constant
// cost per arrival may differ. Feed arbitrary trackers through the
// InsertBatch helper, which falls back to per-item Insert.
type BatchInserter interface {
	// InsertBatch records one arrival for each item, in order.
	InsertBatch(items []Item)
}

// InsertBatch feeds a batch of arrivals into t, using the native batch path
// when t implements BatchInserter and item-at-a-time Insert otherwise. It
// is the generic adapter that lets batch-oriented callers (the HTTP server,
// the benchmark harness) drive any Tracker.
func InsertBatch(t Tracker, items []Item) {
	if b, ok := t.(BatchInserter); ok {
		b.InsertBatch(items)
		return
	}
	for _, it := range items {
		t.Insert(it)
	}
}

// Weights are the user-defined significance coefficients.
type Weights struct {
	Alpha float64 // frequency coefficient
	Beta  float64 // persistency coefficient
}

// Significance computes α·f + β·p.
func (w Weights) Significance(f, p uint64) float64 {
	return w.Alpha*float64(f) + w.Beta*float64(p)
}

// String renders the weights as the paper's "α:β" notation.
func (w Weights) String() string {
	return fmt.Sprintf("%g:%g", w.Alpha, w.Beta)
}

// Frequent, Persistent and Balanced are the three weightings the paper's
// evaluation uses most often.
var (
	Frequent   = Weights{Alpha: 1, Beta: 0}
	Persistent = Weights{Alpha: 0, Beta: 1}
	Balanced   = Weights{Alpha: 1, Beta: 1}
)

// Stream is a finite, replayable stream divided into Periods equal-sized
// (count-based) periods.
type Stream struct {
	Items   []Item
	Periods int
	// Label names the workload for experiment output (e.g. "CAIDA-like").
	Label string
}

// Len returns the total number of arrivals.
func (s *Stream) Len() int { return len(s.Items) }

// ItemsPerPeriod returns the number of arrivals in each period (the last
// period may be up to Periods−1 items shorter).
func (s *Stream) ItemsPerPeriod() int {
	if s.Periods <= 0 {
		return len(s.Items)
	}
	n := (len(s.Items) + s.Periods - 1) / s.Periods
	if n == 0 {
		n = 1
	}
	return n
}

// Distinct returns the number of distinct items.
func (s *Stream) Distinct() int {
	seen := make(map[Item]struct{}, len(s.Items)/4+1)
	for _, it := range s.Items {
		seen[it] = struct{}{}
	}
	return len(seen)
}

// Replay feeds the stream into t: Insert for every arrival, EndPeriod at
// each period boundary including after the final period.
func (s *Stream) Replay(t Tracker) {
	per := s.ItemsPerPeriod()
	for i, it := range s.Items {
		t.Insert(it)
		if (i+1)%per == 0 {
			t.EndPeriod()
		}
	}
	if len(s.Items)%per != 0 {
		t.EndPeriod()
	}
}

// ReplayBatch feeds the stream into t in batches of up to batch items
// (batch ≤ 0 selects 256), using the tracker's native batch path when it
// has one. Batches never span a period boundary, so the result matches
// Replay exactly for any conforming BatchInserter.
func (s *Stream) ReplayBatch(t Tracker, batch int) {
	if batch <= 0 {
		batch = 256
	}
	per := s.ItemsPerPeriod()
	fed := 0 // items fed in the current period
	for off := 0; off < len(s.Items); {
		n := batch
		if rem := per - fed; n > rem {
			n = rem
		}
		if rem := len(s.Items) - off; n > rem {
			n = rem
		}
		InsertBatch(t, s.Items[off:off+n])
		off += n
		fed += n
		if fed == per {
			t.EndPeriod()
			fed = 0
		}
	}
	if fed != 0 {
		t.EndPeriod()
	}
}

// ReplayAll feeds the stream into every tracker in ts in one pass.
func (s *Stream) ReplayAll(ts ...Tracker) {
	for _, t := range ts {
		s.Replay(t)
	}
}

// SortEntries orders entries by significance descending, breaking ties by
// item ID ascending so results are deterministic.
func SortEntries(es []Entry) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].Significance != es[j].Significance {
			return es[i].Significance > es[j].Significance
		}
		return es[i].Item < es[j].Item
	})
}

// TopKFromEntries returns the k largest-significance entries from es
// (sorted, deterministic). k ≤ 0 yields an empty result. It is a helper
// for trackers that materialize all candidates and then rank them.
func TopKFromEntries(es []Entry, k int) []Entry {
	if k <= 0 {
		return nil
	}
	SortEntries(es)
	if k < len(es) {
		es = es[:k]
	}
	return es
}
