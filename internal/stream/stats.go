package stream

// Counters are the cumulative operation counters a tracker accumulates on
// its hot path. Every field is a plain (non-atomic) add: a tracker owned by
// one goroutine — or one shard behind its own lock — pays only an integer
// increment per event, and concurrency-safe wrappers aggregate per-shard
// counters at snapshot time instead of contending on shared atomics.
type Counters struct {
	// Arrivals is the number of Insert/InsertAt arrivals recorded.
	Arrivals uint64
	// Batches is the number of InsertBatch calls on the native batch path.
	Batches uint64
	// BatchItems is the number of arrivals that came in via InsertBatch
	// (BatchItems/Batches is the mean batch size; Arrivals−BatchItems the
	// per-item path's share).
	BatchItems uint64
	// Hits counts arrivals that matched a tracked cell (case 1).
	Hits uint64
	// Admissions counts items inserted into an empty cell (case 2) or
	// after an expulsion.
	Admissions uint64
	// Decrements counts Significance Decrementing operations (case 3).
	Decrements uint64
	// Expulsions counts evicted items.
	Expulsions uint64
	// FlagConsumed counts persistency credits granted by the CLOCK sweep.
	FlagConsumed uint64
	// CellsSwept counts cells the CLOCK pointer has passed over.
	CellsSwept uint64
	// Periods counts EndPeriod boundaries (including implicit time-driven
	// boundaries crossed by InsertAt).
	Periods uint64
	// ParityFlips counts Deviation-Eliminator parity flips; it tracks
	// Periods when the eliminator is enabled and stays 0 in basic mode.
	ParityFlips uint64
}

// Add accumulates other into c, field by field. It is the building block
// for per-shard and per-block aggregation.
func (c *Counters) Add(other Counters) {
	c.Arrivals += other.Arrivals
	c.Batches += other.Batches
	c.BatchItems += other.BatchItems
	c.Hits += other.Hits
	c.Admissions += other.Admissions
	c.Decrements += other.Decrements
	c.Expulsions += other.Expulsions
	c.FlagConsumed += other.FlagConsumed
	c.CellsSwept += other.CellsSwept
	c.Periods += other.Periods
	c.ParityFlips += other.ParityFlips
}

// Stats is a structured observability snapshot of one tracker: identity,
// geometry, occupancy, and the cumulative operation counters. Trackers
// expose it through the StatsReporter extension; aggregating trackers
// (sharded, windowed) merge their children's snapshots with Merge.
type Stats struct {
	// Tracker is the algorithm name (Tracker.Name).
	Tracker string
	// MemoryBytes is the accounted memory footprint.
	MemoryBytes int
	// Shards is the number of independent partitions (1 for single
	// structures).
	Shards int
	// Buckets is w, the number of hash buckets (0 when not bucket-based).
	Buckets int
	// BucketWidth is d, the cells per bucket (0 when not bucket-based).
	BucketWidth int
	// Cells is the total cell capacity (0 when not cell-based).
	Cells int
	// Occupied is the number of occupied cells at snapshot time.
	Occupied int
	// Alpha is the frequency weight.
	Alpha float64
	// Beta is the persistency weight.
	Beta float64
	// Counters are the cumulative operation counters.
	Counters
}

// Merge folds a child snapshot into an aggregate: counters and capacities
// are summed, except Periods and ParityFlips, which take the maximum —
// every child sees the same period boundaries, so summing them would
// multiply the period count by the child count.
func (s *Stats) Merge(child Stats) {
	s.MemoryBytes += child.MemoryBytes
	s.Buckets += child.Buckets
	s.Cells += child.Cells
	s.Occupied += child.Occupied
	periods, flips := s.Periods, s.ParityFlips
	s.Counters.Add(child.Counters)
	s.Periods = periods
	s.ParityFlips = flips
	if child.Periods > s.Periods {
		s.Periods = child.Periods
	}
	if child.ParityFlips > s.ParityFlips {
		s.ParityFlips = child.ParityFlips
	}
}

// StatsReporter is the optional observability extension of Tracker:
// trackers that keep instrumentation counters implement it to expose a
// structured snapshot. Like BatchInserter, callers should feel-test with a
// type assertion or use a generic fallback (the public package provides
// one).
type StatsReporter interface {
	// Stats returns the tracker's observability snapshot.
	Stats() Stats
}

// CollectStats snapshots any Tracker: the native snapshot when t implements
// StatsReporter, otherwise a minimal snapshot carrying only the identity
// fields derivable from the Tracker interface. The second result reports
// whether the snapshot is native.
func CollectStats(t Tracker) (Stats, bool) {
	if r, ok := t.(StatsReporter); ok {
		return r.Stats(), true
	}
	return Stats{Tracker: t.Name(), MemoryBytes: t.MemoryBytes(), Shards: 1}, false
}
