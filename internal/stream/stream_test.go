package stream

import (
	"testing"
)

// recorder is a minimal Tracker that records the calls it receives.
type recorder struct {
	inserts []Item
	periods int
	// insertsPerPeriod[i] = number of Insert calls seen during period i.
	insertsPerPeriod []int
	current          int
}

func (r *recorder) Insert(item Item) {
	r.inserts = append(r.inserts, item)
	r.current++
}
func (r *recorder) EndPeriod() {
	r.periods++
	r.insertsPerPeriod = append(r.insertsPerPeriod, r.current)
	r.current = 0
}
func (r *recorder) Query(Item) (Entry, bool) { return Entry{}, false }
func (r *recorder) TopK(int) []Entry         { return nil }
func (r *recorder) MemoryBytes() int         { return 0 }
func (r *recorder) Name() string             { return "recorder" }

func TestReplayPeriodBoundaries(t *testing.T) {
	s := &Stream{Items: make([]Item, 100), Periods: 10}
	for i := range s.Items {
		s.Items[i] = Item(i)
	}
	r := &recorder{}
	s.Replay(r)
	if len(r.inserts) != 100 {
		t.Fatalf("got %d inserts, want 100", len(r.inserts))
	}
	if r.periods != 10 {
		t.Fatalf("got %d EndPeriod calls, want 10", r.periods)
	}
	for i, n := range r.insertsPerPeriod {
		if n != 10 {
			t.Fatalf("period %d saw %d inserts, want 10", i, n)
		}
	}
}

func TestReplayRaggedFinalPeriod(t *testing.T) {
	// 103 items in 10 periods: ceil(103/10)=11 per period, so the last
	// period holds the remaining 4 items and still gets an EndPeriod.
	s := &Stream{Items: make([]Item, 103), Periods: 10}
	r := &recorder{}
	s.Replay(r)
	if r.periods != 10 {
		t.Fatalf("got %d periods, want 10", r.periods)
	}
	total := 0
	for _, n := range r.insertsPerPeriod {
		total += n
	}
	if total != 103 {
		t.Fatalf("period insert counts sum to %d, want 103", total)
	}
	if last := r.insertsPerPeriod[len(r.insertsPerPeriod)-1]; last != 4 {
		t.Fatalf("final period saw %d inserts, want 4", last)
	}
}

func TestReplayZeroPeriods(t *testing.T) {
	// Periods=0 means the whole stream is one period.
	s := &Stream{Items: []Item{1, 2, 3}}
	r := &recorder{}
	s.Replay(r)
	if r.periods != 1 {
		t.Fatalf("got %d periods, want 1", r.periods)
	}
}

func TestItemsPerPeriod(t *testing.T) {
	cases := []struct {
		items, periods, want int
	}{
		{100, 10, 10},
		{103, 10, 11},
		{5, 10, 1},
		{0, 10, 1},
		{7, 0, 7},
	}
	for _, c := range cases {
		s := &Stream{Items: make([]Item, c.items), Periods: c.periods}
		if got := s.ItemsPerPeriod(); got != c.want {
			t.Errorf("ItemsPerPeriod(%d items, %d periods) = %d, want %d",
				c.items, c.periods, got, c.want)
		}
	}
}

func TestDistinct(t *testing.T) {
	s := &Stream{Items: []Item{1, 2, 2, 3, 3, 3}}
	if got := s.Distinct(); got != 3 {
		t.Fatalf("Distinct = %d, want 3", got)
	}
}

func TestWeightsSignificance(t *testing.T) {
	w := Weights{Alpha: 2, Beta: 3}
	if got := w.Significance(10, 4); got != 32 {
		t.Fatalf("Significance = %v, want 32", got)
	}
	if Frequent.Significance(10, 4) != 10 {
		t.Fatal("Frequent weighting should ignore persistency")
	}
	if Persistent.Significance(10, 4) != 4 {
		t.Fatal("Persistent weighting should ignore frequency")
	}
	if Balanced.Significance(10, 4) != 14 {
		t.Fatal("Balanced weighting should sum both")
	}
}

func TestWeightsString(t *testing.T) {
	if s := (Weights{Alpha: 1, Beta: 10}).String(); s != "1:10" {
		t.Fatalf("String = %q, want 1:10", s)
	}
}

func TestSortEntriesDeterministicTies(t *testing.T) {
	es := []Entry{
		{Item: 5, Significance: 7},
		{Item: 2, Significance: 7},
		{Item: 9, Significance: 10},
	}
	SortEntries(es)
	if es[0].Item != 9 || es[1].Item != 2 || es[2].Item != 5 {
		t.Fatalf("unexpected order: %+v", es)
	}
}

func TestTopKFromEntries(t *testing.T) {
	es := []Entry{
		{Item: 1, Significance: 1},
		{Item: 2, Significance: 5},
		{Item: 3, Significance: 3},
	}
	top := TopKFromEntries(es, 2)
	if len(top) != 2 || top[0].Item != 2 || top[1].Item != 3 {
		t.Fatalf("TopKFromEntries wrong: %+v", top)
	}
	// k larger than the candidate set returns everything.
	top = TopKFromEntries([]Entry{{Item: 4, Significance: 2}}, 10)
	if len(top) != 1 {
		t.Fatalf("expected 1 entry, got %d", len(top))
	}
}

func TestTopKFromEntriesNonPositiveK(t *testing.T) {
	es := []Entry{{Item: 1, Significance: 5}}
	if got := TopKFromEntries(es, 0); len(got) != 0 {
		t.Fatalf("k=0 returned %d entries", len(got))
	}
	if got := TopKFromEntries(es, -2); len(got) != 0 {
		t.Fatalf("negative k returned %d entries", len(got))
	}
}
