// Package spacesaving implements the Space-Saving algorithm (Metwally,
// Agrawal, El Abbadi) with its Stream-Summary structure, the classic
// counter-based baseline for top-k frequent items (paper Section II-A).
//
// Space-Saving keeps k counters ⟨item, count, error⟩. A tracked arrival
// increments its counter; an untracked arrival replaces the item with the
// minimum count m, setting count = m+1 and error = m. The Stream-Summary
// (counts grouped in a doubly-linked list of count-buckets) makes both
// operations O(1).
//
// Space-Saving tracks frequency only; the reported significance is
// α·frequency. The paper evaluates it in the α=1, β=0 setting.
package spacesaving

import (
	"sigstream/internal/stream"
)

// EntryBytes is the accounted memory per counter: 8-byte ID, 8-byte count,
// 8-byte error, plus linked-structure overhead amortized to 8 bytes.
const EntryBytes = 32

type node struct {
	item       stream.Item
	err        uint64
	b          *bucket
	prev, next *node // siblings within the bucket (nil-terminated)
}

type bucket struct {
	count      uint64
	head       *node
	prev, next *bucket // ascending count order (nil-terminated)
}

// SS is a Space-Saving summary.
type SS struct {
	capacity int
	alpha    float64
	index    map[stream.Item]*node
	min      *bucket // bucket with the smallest count
}

// New creates a Space-Saving summary sized from a memory budget.
// alpha is the frequency weight used when reporting significance.
func New(memoryBytes int, alpha float64) *SS {
	capacity := memoryBytes / EntryBytes
	if capacity < 1 {
		capacity = 1
	}
	return NewCapacity(capacity, alpha)
}

// NewCapacity creates a Space-Saving summary with an explicit counter count.
func NewCapacity(capacity int, alpha float64) *SS {
	if capacity < 1 {
		capacity = 1
	}
	return &SS{
		capacity: capacity,
		alpha:    alpha,
		index:    make(map[stream.Item]*node, capacity),
	}
}

// Capacity reports the number of counters.
func (s *SS) Capacity() int { return s.capacity }

// MemoryBytes reports the accounted footprint.
func (s *SS) MemoryBytes() int { return s.capacity * EntryBytes }

// Name identifies the algorithm.
func (s *SS) Name() string { return "SpaceSaving" }

// Insert records one arrival.
func (s *SS) Insert(item stream.Item) {
	if n, ok := s.index[item]; ok {
		s.increment(n)
		return
	}
	if len(s.index) < s.capacity {
		n := &node{item: item}
		s.index[item] = n
		s.attach(n, s.bucketFor(1, nil))
		return
	}
	// Replace a minimum-count item: count becomes min+1, error = min.
	victim := s.min.head
	delete(s.index, victim.item)
	victim.item = item
	victim.err = s.min.count
	s.index[item] = victim
	s.increment(victim)
}

// EndPeriod is a no-op: Space-Saving has no notion of periods.
func (s *SS) EndPeriod() {}

// Query reports the estimate for item.
func (s *SS) Query(item stream.Item) (stream.Entry, bool) {
	n, ok := s.index[item]
	if !ok {
		return stream.Entry{}, false
	}
	return s.entry(n), true
}

// Count returns the estimated count and its maximum overestimation error.
func (s *SS) Count(item stream.Item) (count, err uint64, ok bool) {
	n, found := s.index[item]
	if !found {
		return 0, 0, false
	}
	return n.b.count, n.err, true
}

// TopK reports the k tracked items with the largest counts.
func (s *SS) TopK(k int) []stream.Entry {
	es := make([]stream.Entry, 0, len(s.index))
	for _, n := range s.index {
		es = append(es, s.entry(n))
	}
	return stream.TopKFromEntries(es, k)
}

func (s *SS) entry(n *node) stream.Entry {
	return stream.Entry{
		Item:         n.item,
		Frequency:    n.b.count,
		Significance: s.alpha * float64(n.b.count),
	}
}

// increment moves n from its bucket to the count+1 bucket in O(1).
func (s *SS) increment(n *node) {
	old := n.b
	s.detach(n)
	s.attach(n, s.bucketFor(old.count+1, old))
	if old.head == nil {
		s.removeBucket(old)
	}
}

// bucketFor returns the bucket with the given count, creating it after the
// hint bucket (or at the front when hint is nil).
func (s *SS) bucketFor(count uint64, hint *bucket) *bucket {
	var prev, cur *bucket
	if hint != nil {
		prev, cur = hint, hint.next
	} else {
		cur = s.min
	}
	for cur != nil && cur.count < count {
		prev, cur = cur, cur.next
	}
	if cur != nil && cur.count == count {
		return cur
	}
	b := &bucket{count: count, prev: prev, next: cur}
	if prev != nil {
		prev.next = b
	} else {
		s.min = b
	}
	if cur != nil {
		cur.prev = b
	}
	return b
}

func (s *SS) attach(n *node, b *bucket) {
	n.b = b
	n.prev = nil
	n.next = b.head
	if b.head != nil {
		b.head.prev = n
	}
	b.head = n
}

func (s *SS) detach(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		n.b.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	}
	n.prev, n.next = nil, nil
}

func (s *SS) removeBucket(b *bucket) {
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		s.min = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	}
}

var _ stream.Tracker = (*SS)(nil)
