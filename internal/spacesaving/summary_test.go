package spacesaving

// White-box tests of the Stream-Summary structure: the doubly-linked list
// of count-buckets must stay strictly ascending, every node must point at
// the bucket that holds it, and the index map must stay in sync.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sigstream/internal/stream"
)

// checkInvariants validates the whole Stream-Summary.
func checkInvariants(t *testing.T, s *SS) {
	t.Helper()
	seen := 0
	var prevCount uint64
	first := true
	for b := s.min; b != nil; b = b.next {
		if !first && b.count <= prevCount {
			t.Fatalf("bucket counts not strictly ascending: %d after %d",
				b.count, prevCount)
		}
		prevCount = b.count
		first = false
		if b.head == nil {
			t.Fatalf("empty bucket (count %d) left in the list", b.count)
		}
		if b.next != nil && b.next.prev != b {
			t.Fatal("broken bucket back-link")
		}
		var prevNode *node
		for n := b.head; n != nil; n = n.next {
			if n.b != b {
				t.Fatalf("node %d points at bucket %d, lives in %d",
					n.item, n.b.count, b.count)
			}
			if n.prev != prevNode {
				t.Fatal("broken node back-link")
			}
			if idx, ok := s.index[n.item]; !ok || idx != n {
				t.Fatalf("index out of sync for item %d", n.item)
			}
			prevNode = n
			seen++
		}
	}
	if seen != len(s.index) {
		t.Fatalf("list holds %d nodes, index holds %d", seen, len(s.index))
	}
	if seen > s.capacity {
		t.Fatalf("%d nodes exceed capacity %d", seen, s.capacity)
	}
}

func TestSummaryInvariantsUnderRandomOps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewCapacity(8, 1)
		for op := 0; op < 2000; op++ {
			s.Insert(stream.Item(rng.Intn(50)))
		}
		checkInvariants(t, s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryInvariantsSequentialFill(t *testing.T) {
	s := NewCapacity(4, 1)
	// Fill, saturate, and churn.
	for i := 0; i < 4; i++ {
		s.Insert(stream.Item(i))
	}
	checkInvariants(t, s)
	for i := 0; i < 100; i++ {
		s.Insert(stream.Item(100 + i))
	}
	checkInvariants(t, s)
	// Heavy increments on one survivor.
	survivor := s.TopK(1)[0].Item
	for i := 0; i < 50; i++ {
		s.Insert(survivor)
	}
	checkInvariants(t, s)
}

func TestMinBucketTracksMinimum(t *testing.T) {
	s := NewCapacity(3, 1)
	s.Insert(1)
	s.Insert(1)
	s.Insert(2)
	s.Insert(3)
	if s.min == nil || s.min.count != 1 {
		t.Fatalf("min bucket count %v, want 1", s.min)
	}
	s.Insert(2)
	s.Insert(3)
	// All at ≥2 now except... 1 has 2, 2 has 2, 3 has 2: min bucket = 2.
	if s.min.count != 2 {
		t.Fatalf("min bucket count %d, want 2", s.min.count)
	}
	checkInvariants(t, s)
}
