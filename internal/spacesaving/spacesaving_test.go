package spacesaving

import (
	"math/rand"
	"testing"

	"sigstream/internal/gen"
	"sigstream/internal/metrics"
	"sigstream/internal/oracle"
	"sigstream/internal/stream"
)

func TestExactWhenUnderCapacity(t *testing.T) {
	s := NewCapacity(10, 1)
	for i := 0; i < 5; i++ {
		s.Insert(1)
	}
	for i := 0; i < 3; i++ {
		s.Insert(2)
	}
	c, err, ok := s.Count(1)
	if !ok || c != 5 || err != 0 {
		t.Fatalf("item 1: count=%d err=%d ok=%v, want 5/0/true", c, err, ok)
	}
	c, err, ok = s.Count(2)
	if !ok || c != 3 || err != 0 {
		t.Fatalf("item 2: count=%d err=%d ok=%v, want 3/0/true", c, err, ok)
	}
}

func TestReplacementRule(t *testing.T) {
	// Capacity 2. After a:3, b:1, inserting c replaces b (the min):
	// count(c) = min+1 = 2, err(c) = min = 1.
	s := NewCapacity(2, 1)
	s.Insert(10)
	s.Insert(10)
	s.Insert(10)
	s.Insert(20)
	s.Insert(30)
	if _, ok := s.Query(20); ok {
		t.Fatal("item 20 should have been replaced")
	}
	c, err, ok := s.Count(30)
	if !ok || c != 2 || err != 1 {
		t.Fatalf("replacement: count=%d err=%d ok=%v, want 2/1/true", c, err, ok)
	}
	c, _, _ = s.Count(10)
	if c != 3 {
		t.Fatalf("survivor count = %d, want 3", c)
	}
}

func TestNeverUnderestimates(t *testing.T) {
	// Space-Saving's classical guarantee: estimate ≥ true count for every
	// tracked item.
	rng := rand.New(rand.NewSource(7))
	truth := map[stream.Item]uint64{}
	s := NewCapacity(20, 1)
	for i := 0; i < 20000; i++ {
		item := stream.Item(rng.Intn(200) + 1)
		truth[item]++
		s.Insert(item)
	}
	for item, f := range truth {
		if c, _, ok := s.Count(item); ok && c < f {
			t.Fatalf("item %d: estimate %d < true %d", item, c, f)
		}
	}
}

func TestCountSumInvariant(t *testing.T) {
	// Σ counts over all counters == stream length (each arrival adds
	// exactly 1 to exactly one counter, including replacements).
	rng := rand.New(rand.NewSource(9))
	s := NewCapacity(16, 1)
	const n = 5000
	for i := 0; i < n; i++ {
		s.Insert(stream.Item(rng.Intn(100)))
	}
	var total uint64
	for _, e := range s.TopK(1 << 20) {
		total += e.Frequency
	}
	if total != n {
		t.Fatalf("counts sum to %d, want %d", total, n)
	}
}

func TestTopKOrdering(t *testing.T) {
	s := NewCapacity(100, 1)
	for i := 1; i <= 10; i++ {
		for j := 0; j < i*3; j++ {
			s.Insert(stream.Item(i))
		}
	}
	top := s.TopK(3)
	if len(top) != 3 || top[0].Item != 10 || top[1].Item != 9 || top[2].Item != 8 {
		t.Fatalf("TopK wrong: %+v", top)
	}
}

func TestMemorySizing(t *testing.T) {
	s := New(3200, 1)
	if s.Capacity() != 100 {
		t.Fatalf("capacity = %d, want 100", s.Capacity())
	}
	if s.MemoryBytes() != 3200 {
		t.Fatalf("MemoryBytes = %d, want 3200", s.MemoryBytes())
	}
	tiny := New(1, 1)
	if tiny.Capacity() != 1 {
		t.Fatal("capacity must floor at 1")
	}
}

func TestHeadPrecisionOnZipf(t *testing.T) {
	st := gen.Generate(gen.Config{N: 50000, M: 5000, Periods: 1, Skew: 1.2,
		Head: 100, TailWindowFrac: 1, Seed: 3})
	o := oracle.FromStream(st, stream.Frequent)
	s := NewCapacity(500, 1)
	st.Replay(s)
	r := metrics.Evaluate(o, s, 50)
	if r.Precision < 0.7 {
		t.Fatalf("Space-Saving precision %.2f on easy Zipf head, want ≥0.7", r.Precision)
	}
}

func TestQueryMissing(t *testing.T) {
	s := NewCapacity(4, 1)
	if _, ok := s.Query(99); ok {
		t.Fatal("missing item reported present")
	}
	if _, _, ok := s.Count(99); ok {
		t.Fatal("missing item counted")
	}
}

func TestName(t *testing.T) {
	if New(100, 1).Name() != "SpaceSaving" {
		t.Fatal("wrong name")
	}
}

func BenchmarkInsert(b *testing.B) {
	st := gen.NetworkLike(1<<17, 1)
	s := New(64*1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(st.Items[i&(1<<17-1)])
	}
}
