module sigstream

go 1.22
