package sigstream

// Deprecated positional constructors.
//
// Release note: every baseline tracker is constructed through
// NewBaseline(kind, Config) — one entry point, one validated Config,
// uniform defaults. The positional per-baseline constructors below
// predate it and survive only as thin wrappers for source compatibility;
// they add no behavior, receive no new parameters, and will be removed
// in a future major version. New code (and any new baseline added to the
// line-up) must go through NewBaseline: the docs test enforces that no
// new exported constructor bypasses it.

// NewSpaceSaving creates the Space-Saving baseline (counter-based, top-k
// frequent items). It tracks frequency only; alpha scales the reported
// significance.
//
// Deprecated: Use NewBaseline(SpaceSaving, Config{MemoryBytes: memoryBytes,
// Weights: Weights{Alpha: alpha}}).
func NewSpaceSaving(memoryBytes int, alpha float64) Tracker {
	return NewBaseline(SpaceSaving,
		Config{MemoryBytes: memoryBytes, Weights: Weights{Alpha: alpha}})
}

// NewLossyCounting creates the Lossy Counting baseline (counter-based,
// top-k frequent items). It tracks frequency only.
//
// Deprecated: Use NewBaseline(LossyCounting, Config{MemoryBytes:
// memoryBytes, Weights: Weights{Alpha: alpha}}).
func NewLossyCounting(memoryBytes int, alpha float64) Tracker {
	return NewBaseline(LossyCounting,
		Config{MemoryBytes: memoryBytes, Weights: Weights{Alpha: alpha}})
}

// NewMisraGries creates the Misra-Gries "Frequent" baseline (counter-based,
// top-k frequent items; never overestimates). It tracks frequency only.
//
// Deprecated: Use NewBaseline(MisraGries, Config{MemoryBytes: memoryBytes,
// Weights: Weights{Alpha: alpha}}).
func NewMisraGries(memoryBytes int, alpha float64) Tracker {
	return NewBaseline(MisraGries,
		Config{MemoryBytes: memoryBytes, Weights: Weights{Alpha: alpha}})
}

// NewFrequentSketch creates a sketch+min-heap tracker for top-k frequent
// items (the paper's sketch baselines in the α=1, β=0 setting).
//
// Deprecated: Use NewBaseline(FrequentSketch, Config{MemoryBytes:
// memoryBytes, TopK: k, Sketch: kind, Weights: Weights{Alpha: alpha}}).
func NewFrequentSketch(kind SketchKind, memoryBytes, k int, alpha float64) Tracker {
	return NewBaseline(FrequentSketch, Config{MemoryBytes: memoryBytes,
		TopK: k, Sketch: kind, Weights: Weights{Alpha: alpha}})
}

// NewPersistentSketch creates the sketch+Bloom-filter+heap tracker for
// top-k persistent items: half the memory deduplicates appearances within
// the current period, the rest counts periods.
//
// Deprecated: Use NewBaseline(PersistentSketch, Config{MemoryBytes:
// memoryBytes, TopK: k, Sketch: kind, Weights: Weights{Beta: beta}}).
func NewPersistentSketch(kind SketchKind, memoryBytes, k int, beta float64) Tracker {
	return NewBaseline(PersistentSketch, Config{MemoryBytes: memoryBytes,
		TopK: k, Sketch: kind, Weights: Weights{Beta: beta}})
}

// NewSignificantSketch creates the two-sketch tracker for top-k significant
// items: a frequency sketch and a persistency structure share the memory
// evenly, with one heap ranking by α·f̂ + β·p̂.
//
// Deprecated: Use NewBaseline(SignificantSketch, Config{MemoryBytes:
// memoryBytes, TopK: k, Sketch: kind, Weights: w}).
func NewSignificantSketch(kind SketchKind, memoryBytes, k int, w Weights) Tracker {
	return NewBaseline(SignificantSketch, Config{MemoryBytes: memoryBytes,
		TopK: k, Sketch: kind, Weights: w})
}

// NewPIE creates the PIE baseline for top-k persistent items: one
// Space-Time Bloom Filter of perPeriodBytes per period, with fountain-coded
// item IDs decoded at query time. Note PIE's total memory is
// perPeriodBytes × periods, matching the paper's T× allowance.
//
// Deprecated: Use NewBaseline(PIE, Config{MemoryBytes: perPeriodBytes,
// Weights: Weights{Beta: beta}}).
func NewPIE(perPeriodBytes int, beta float64) Tracker {
	return NewBaseline(PIE,
		Config{MemoryBytes: perPeriodBytes, Weights: Weights{Beta: beta}})
}

// NewSampling creates the coordinated hash-sampling baseline: a
// hash-defined subset of the item space is tracked exactly; everything
// else is ignored. expectedDistinct calibrates the sampling rate to the
// memory budget.
//
// Deprecated: Use NewBaseline(Sampling, Config{MemoryBytes: memoryBytes,
// ExpectedDistinct: expectedDistinct, Weights: w}).
func NewSampling(memoryBytes, expectedDistinct int, w Weights) Tracker {
	return NewBaseline(Sampling, Config{MemoryBytes: memoryBytes,
		ExpectedDistinct: expectedDistinct, Weights: w})
}
