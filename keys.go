package sigstream

import (
	"sigstream/internal/hashing"
)

// HashKey derives a stable 64-bit Item from a string key (a username, URL,
// flow tuple, …). It combines two independent 32-bit Bob hashes, so
// accidental collisions are negligible for realistic key sets (~2^-64 per
// pair × pairs).
func HashKey(key string) Item {
	return HashKeyBytes([]byte(key))
}

// HashKeyBytes is HashKey for a raw byte key. It exists so wire decoders
// (the binary ingest protocol, the pooled JSON insert path) can hash keys
// straight out of a network buffer without materialising a string first;
// HashKeyBytes(b) == HashKey(string(b)) for every b.
func HashKeyBytes(key []byte) Item {
	lo := hashing.NewBob(0x5eed0001).Hash(key)
	hi := hashing.NewBob(0x5eed0002).Hash(key)
	return uint64(hi)<<32 | uint64(lo)
}

// KeyMap remembers the string behind each hashed Item so query results can
// be reported with their original keys. It is an optional convenience: the
// trackers themselves only ever store the 8-byte Item.
type KeyMap struct {
	names map[Item]string
}

// NewKeyMap creates an empty KeyMap.
func NewKeyMap() *KeyMap {
	return &KeyMap{names: make(map[Item]string)}
}

// Intern hashes key, remembers the mapping, and returns the Item.
func (m *KeyMap) Intern(key string) Item {
	it := HashKey(key)
	if _, ok := m.names[it]; !ok {
		m.names[it] = key
	}
	return it
}

// Note remembers key as the string behind an already-hashed item. It is
// the byte-slice complement of Intern for callers that computed the Item
// with HashKeyBytes: the string copy is made only on first sight, so a
// hot key costs one map probe and zero allocations after its first
// arrival. The caller must pass item == HashKeyBytes(key).
func (m *KeyMap) Note(item Item, key []byte) {
	if _, ok := m.names[item]; !ok {
		m.names[item] = string(key)
	}
}

// Lookup returns the string behind item, if interned.
func (m *KeyMap) Lookup(item Item) (string, bool) {
	s, ok := m.names[item]
	return s, ok
}

// Name returns the string behind item, or a hex rendering if unknown.
func (m *KeyMap) Name(item Item) string {
	if s, ok := m.names[item]; ok {
		return s
	}
	return "0x" + hex64(item)
}

// Len reports the number of interned keys.
func (m *KeyMap) Len() int { return len(m.names) }

// Range calls fn for every interned (item, key) pair in unspecified
// order, stopping early if fn returns false. It exists so callers that
// persist a KeyMap (e.g. a tenant spill image) can walk the mapping
// without this package committing to an exposed map.
func (m *KeyMap) Range(fn func(item Item, key string) bool) {
	for it, key := range m.names {
		if !fn(it, key) {
			return
		}
	}
}

// BoundedKeyMap is a KeyMap with a hard entry limit: when full, interning a
// new key evicts the least-recently-used one. Use it on unbounded key
// spaces (IPs, URLs) where a plain KeyMap would grow without limit; evicted
// keys simply render as hex if they resurface in a ranking.
type BoundedKeyMap struct {
	max   int
	names map[Item]*boundedEntry
	// Intrusive LRU list: head = most recent, tail = eviction candidate.
	head, tail *boundedEntry
}

type boundedEntry struct {
	item       Item
	key        string
	prev, next *boundedEntry
}

// NewBoundedKeyMap creates a KeyMap holding at most max keys (minimum 1).
func NewBoundedKeyMap(max int) *BoundedKeyMap {
	if max < 1 {
		max = 1
	}
	return &BoundedKeyMap{max: max, names: make(map[Item]*boundedEntry, max)}
}

// Intern hashes key, remembers the mapping (evicting the LRU entry when
// full), and returns the Item.
func (m *BoundedKeyMap) Intern(key string) Item {
	it := HashKey(key)
	if e, ok := m.names[it]; ok {
		m.touch(e)
		return it
	}
	if len(m.names) >= m.max {
		victim := m.tail
		m.unlink(victim)
		delete(m.names, victim.item)
	}
	e := &boundedEntry{item: it, key: key}
	m.names[it] = e
	m.pushFront(e)
	return it
}

// Lookup returns the string behind item, if still interned. A hit counts
// as use for LRU purposes.
func (m *BoundedKeyMap) Lookup(item Item) (string, bool) {
	e, ok := m.names[item]
	if !ok {
		return "", false
	}
	m.touch(e)
	return e.key, true
}

// Name returns the string behind item, or a hex rendering if evicted or
// never interned.
func (m *BoundedKeyMap) Name(item Item) string {
	if s, ok := m.Lookup(item); ok {
		return s
	}
	return "0x" + hex64(item)
}

// Len reports the number of currently interned keys.
func (m *BoundedKeyMap) Len() int { return len(m.names) }

// Cap reports the configured limit.
func (m *BoundedKeyMap) Cap() int { return m.max }

func (m *BoundedKeyMap) touch(e *boundedEntry) {
	if m.head == e {
		return
	}
	m.unlink(e)
	m.pushFront(e)
}

func (m *BoundedKeyMap) pushFront(e *boundedEntry) {
	e.prev = nil
	e.next = m.head
	if m.head != nil {
		m.head.prev = e
	}
	m.head = e
	if m.tail == nil {
		m.tail = e
	}
}

func (m *BoundedKeyMap) unlink(e *boundedEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		m.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		m.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func hex64(x uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[x&0xf]
		x >>= 4
	}
	return string(b[:])
}
