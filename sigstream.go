package sigstream

import (
	"sigstream/internal/stream"
)

// Item is a 64-bit stream item identifier (a source IP, user ID, flow key
// hash, …). Use HashKey to derive Items from strings.
type Item = uint64

// Entry is a tracker's estimate for one item.
type Entry struct {
	// Item is the identifier.
	Item Item
	// Frequency is the estimated number of appearances.
	Frequency uint64
	// Persistency is the estimated number of periods with at least one
	// appearance.
	Persistency uint64
	// Significance is α·Frequency + β·Persistency under the tracker's
	// weights.
	Significance float64
}

// Weights are the significance coefficients: Significance = Alpha·frequency
// + Beta·persistency.
type Weights struct {
	Alpha float64
	Beta  float64
}

// Common weightings.
var (
	// Frequent scores by frequency only (classic top-k frequent items).
	Frequent = Weights{Alpha: 1}
	// Persistent scores by persistency only (top-k persistent items).
	Persistent = Weights{Beta: 1}
	// Balanced weighs both equally.
	Balanced = Weights{Alpha: 1, Beta: 1}
)

// Significance computes Alpha·f + Beta·p.
func (w Weights) Significance(f, p uint64) float64 {
	return w.Alpha*float64(f) + w.Beta*float64(p)
}

// Tracker is the interface implemented by every algorithm in this package:
// LTC (New) and all baselines (NewSpaceSaving, NewCMSketch, NewPIE, …).
//
// Feed arrivals with Insert; mark each period boundary with EndPeriod,
// including after the final period. Query and TopK may be called at any
// time. Trackers are not safe for concurrent use.
type Tracker interface {
	// Insert records one arrival of item.
	Insert(item Item)
	// EndPeriod marks the boundary between two periods.
	EndPeriod()
	// Query returns the estimate for item and whether it is tracked.
	Query(item Item) (Entry, bool)
	// TopK returns up to k entries with the largest estimated
	// significance, in non-increasing order.
	TopK(k int) []Entry
	// MemoryBytes reports the memory footprint the structure was sized to.
	MemoryBytes() int
	// Name identifies the algorithm.
	Name() string
}

// BatchInserter is the optional bulk-ingestion extension of Tracker.
// Trackers with a native batch path (LTC, Sharded, the window tracker)
// implement it to amortize per-arrival overhead — interface dispatch,
// CLOCK-advance bookkeeping and, for Sharded, one lock round-trip per item.
// InsertBatch(items) is semantically identical to calling Insert for each
// item in order. Every tracker returned by this package implements
// BatchInserter: algorithms without a native path fall back to per-item
// insertion. For an arbitrary Tracker use the InsertBatch helper.
type BatchInserter interface {
	// InsertBatch records one arrival for each item, in order.
	InsertBatch(items []Item)
}

// InsertBatch feeds a batch of arrivals into any Tracker: the native batch
// path when t implements BatchInserter, item-at-a-time Insert otherwise.
func InsertBatch(t Tracker, items []Item) {
	if b, ok := t.(BatchInserter); ok {
		b.InsertBatch(items)
		return
	}
	for _, it := range items {
		t.Insert(it)
	}
}

// wrap adapts an internal tracker to the public interface.
type wrap struct {
	t stream.Tracker
}

func (w wrap) Insert(item Item) { w.t.Insert(item) }
func (w wrap) EndPeriod()       { w.t.EndPeriod() }

// InsertBatch routes a batch to the internal tracker's native batch path,
// or falls back to per-item insertion (the generic adapter for baselines).
func (w wrap) InsertBatch(items []Item) { stream.InsertBatch(w.t, items) }
func (w wrap) Query(item Item) (Entry, bool) {
	e, ok := w.t.Query(item)
	return publicEntry(e), ok
}
func (w wrap) TopK(k int) []Entry {
	es := w.t.TopK(k)
	out := make([]Entry, len(es))
	for i, e := range es {
		out[i] = publicEntry(e)
	}
	return out
}
func (w wrap) MemoryBytes() int { return w.t.MemoryBytes() }
func (w wrap) Name() string     { return w.t.Name() }

func publicEntry(e stream.Entry) Entry {
	return Entry{Item: e.Item, Frequency: e.Frequency,
		Persistency: e.Persistency, Significance: e.Significance}
}

func internalWeights(w Weights) stream.Weights {
	return stream.Weights{Alpha: w.Alpha, Beta: w.Beta}
}

var _ BatchInserter = wrap{}
