package sigstream

import (
	"errors"
	"fmt"

	"sigstream/internal/ltc"
)

// ErrInvalidConfig wraps every configuration validation failure.
var ErrInvalidConfig = errors.New("sigstream: invalid config")

// Documented configuration defaults, applied in one place by every
// constructor (New, NewSharded, NewWindow, NewBaseline).
const (
	// DefaultMemoryBytes is the budget used when Config.MemoryBytes is 0.
	DefaultMemoryBytes = 64 << 10
	// DefaultTopK is the heap size used by the sketch-based baselines when
	// Config.TopK is 0.
	DefaultTopK = 100
)

// withDefaults fills every zero field that has a documented default:
// MemoryBytes → DefaultMemoryBytes, Weights → Balanced, BucketWidth →
// ltc.DefaultBucketWidth, TopK → DefaultTopK. This is the single
// defaulting story shared by all constructors; ad-hoc clamping elsewhere
// is a bug.
func (c Config) withDefaults() Config {
	if c.MemoryBytes == 0 {
		c.MemoryBytes = DefaultMemoryBytes
	}
	if c.Weights == (Weights{}) {
		c.Weights = Balanced
	}
	if c.BucketWidth == 0 {
		c.BucketWidth = ltc.DefaultBucketWidth
	}
	if c.TopK == 0 {
		c.TopK = DefaultTopK
	}
	return c
}

// mustValidate backs the constructors' documented panic-on-invalid
// behavior.
func mustValidate(c Config) {
	if err := c.Validate(); err != nil {
		panic(err)
	}
}

// Validate reports configuration mistakes — negative sizes, weights or
// rates, DecayFactor outside [0,1] — plus combinations that are almost
// certainly not what the caller intended. Every constructor (New,
// NewSharded, NewWindow, NewBaseline) applies the documented defaults to
// zero fields and then panics on a Validate failure, so call Validate
// first whenever the configuration comes from user input (flags, config
// files) to turn the panic into an error you can handle.
func (c Config) Validate() error {
	var problems []string
	if c.MemoryBytes < 0 {
		problems = append(problems, "MemoryBytes is negative")
	}
	if c.MemoryBytes > 0 && c.MemoryBytes < 2*16 {
		problems = append(problems, "MemoryBytes below one cell pair; the tracker will hold almost nothing")
	}
	if c.Weights.Alpha < 0 || c.Weights.Beta < 0 {
		problems = append(problems, "negative significance weights")
	}
	if c.BucketWidth < 0 {
		problems = append(problems, "BucketWidth is negative")
	}
	if c.BucketWidth > 256 {
		problems = append(problems, "BucketWidth > 256 makes every bucket operation a long scan")
	}
	if c.ItemsPerPeriod < 0 {
		problems = append(problems, "ItemsPerPeriod is negative")
	}
	if c.PeriodDuration < 0 {
		problems = append(problems, "PeriodDuration is negative")
	}
	// 0 and 1 both mean "no decay"; anything outside [0,1] is an error.
	if c.DecayFactor < 0 || c.DecayFactor > 1 {
		problems = append(problems, "DecayFactor outside [0,1]")
	}
	if c.DecayFactor > 0 && c.DecayFactor < 0.01 {
		problems = append(problems, "DecayFactor < 0.01 erases nearly everything each period")
	}
	if c.TopK < 0 {
		problems = append(problems, "TopK is negative")
	}
	if c.Sketch < CM || c.Sketch > Count {
		problems = append(problems, "unknown Sketch kind")
	}
	if c.ExpectedDistinct < 0 {
		problems = append(problems, "ExpectedDistinct is negative")
	}
	if len(problems) == 0 {
		return nil
	}
	return fmt.Errorf("%w: %s", ErrInvalidConfig, join(problems))
}

func join(ps []string) string {
	out := ""
	for i, p := range ps {
		if i > 0 {
			out += "; "
		}
		out += p
	}
	return out
}
