package sigstream

import (
	"errors"
	"fmt"
)

// ErrInvalidConfig wraps every configuration validation failure.
var ErrInvalidConfig = errors.New("sigstream: invalid config")

// Validate reports configuration mistakes that New would otherwise paper
// over by clamping, plus combinations that are almost certainly not what
// the caller intended. Call it when the configuration comes from user
// input (flags, config files); programmatic callers with known-good values
// can skip it.
func (c Config) Validate() error {
	var problems []string
	if c.MemoryBytes < 0 {
		problems = append(problems, "MemoryBytes is negative")
	}
	if c.MemoryBytes > 0 && c.MemoryBytes < 2*16 {
		problems = append(problems, "MemoryBytes below one cell pair; the tracker will hold almost nothing")
	}
	if c.Weights.Alpha < 0 || c.Weights.Beta < 0 {
		problems = append(problems, "negative significance weights")
	}
	if c.BucketWidth < 0 {
		problems = append(problems, "BucketWidth is negative")
	}
	if c.BucketWidth > 256 {
		problems = append(problems, "BucketWidth > 256 makes every bucket operation a long scan")
	}
	if c.ItemsPerPeriod < 0 {
		problems = append(problems, "ItemsPerPeriod is negative")
	}
	if c.PeriodDuration < 0 {
		problems = append(problems, "PeriodDuration is negative")
	}
	// 0 and 1 both mean "no decay"; anything outside [0,1] is an error.
	if c.DecayFactor < 0 || c.DecayFactor > 1 {
		problems = append(problems, "DecayFactor outside [0,1]")
	}
	if c.DecayFactor > 0 && c.DecayFactor < 0.01 {
		problems = append(problems, "DecayFactor < 0.01 erases nearly everything each period")
	}
	if len(problems) == 0 {
		return nil
	}
	return fmt.Errorf("%w: %s", ErrInvalidConfig, join(problems))
}

func join(ps []string) string {
	out := ""
	for i, p := range ps {
		if i > 0 {
			out += "; "
		}
		out += p
	}
	return out
}
