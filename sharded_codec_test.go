package sigstream

import (
	"testing"
)

func TestShardedCheckpointRoundTrip(t *testing.T) {
	s := NewSharded(Config{MemoryBytes: 32 << 10, Weights: Balanced, Seed: 2}, 4)
	for p := 0; p < 3; p++ {
		for i := 0; i < 100; i++ {
			s.Insert(Item(i + 1))
		}
		s.EndPeriod()
	}
	img, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := NewSharded(Config{}, 1) // shape replaced on load
	if err := restored.UnmarshalBinary(img); err != nil {
		t.Fatal(err)
	}
	if restored.Shards() != 4 {
		t.Fatalf("restored %d shards, want 4", restored.Shards())
	}
	a := s.TopK(20)
	b := restored.TopK(20)
	if len(a) != len(b) {
		t.Fatalf("TopK size %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("TopK[%d] differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Restored tracker keeps working.
	restored.Insert(5)
	if _, ok := restored.Query(5); !ok {
		t.Fatal("restored tracker unusable")
	}
}

func TestShardedCheckpointRejectsGarbage(t *testing.T) {
	s := NewSharded(Config{MemoryBytes: 8 << 10}, 2)
	img, _ := s.MarshalBinary()
	cases := map[string][]byte{
		"empty":     {},
		"magic":     append([]byte{1, 2, 3, 4}, img[4:]...),
		"truncated": img[:len(img)-3],
		"trailing":  append(append([]byte(nil), img...), 0xff),
	}
	for name, data := range cases {
		r := NewSharded(Config{}, 1)
		if err := r.UnmarshalBinary(data); err == nil {
			t.Errorf("%s: corrupt sharded checkpoint accepted", name)
		}
	}
}
