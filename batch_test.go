package sigstream

import (
	"fmt"
	"testing"

	"sigstream/internal/gen"
)

// feedSequential replays s item-at-a-time with a period boundary every per
// arrivals (and after a trailing partial period).
func feedSequential(tr Tracker, items []Item, per int) {
	for i, it := range items {
		tr.Insert(it)
		if (i+1)%per == 0 {
			tr.EndPeriod()
		}
	}
	if len(items)%per != 0 {
		tr.EndPeriod()
	}
}

// feedBatched replays the same stream through InsertBatch in ragged batch
// sizes (cycling through sizes, never spanning a period boundary).
func feedBatched(tr Tracker, items []Item, per int) {
	sizes := []int{1, 7, 256, 3, 64, 1000}
	si := 0
	fed := 0
	for off := 0; off < len(items); {
		n := sizes[si%len(sizes)]
		si++
		if rem := per - fed; n > rem {
			n = rem
		}
		if rem := len(items) - off; n > rem {
			n = rem
		}
		InsertBatch(tr, items[off:off+n])
		off += n
		fed += n
		if fed == per {
			tr.EndPeriod()
			fed = 0
		}
	}
	if fed != 0 {
		tr.EndPeriod()
	}
}

// assertSameResults compares the two trackers' full rankings and the
// estimates of every ranked item; any divergence between the batch and
// per-item paths fails the test.
func assertSameResults(t *testing.T, seq, bat Tracker) {
	t.Helper()
	a, b := seq.TopK(100), bat.TopK(100)
	if len(a) != len(b) {
		t.Fatalf("TopK length %d (sequential) vs %d (batched)", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("TopK[%d]: sequential %+v, batched %+v", i, a[i], b[i])
		}
	}
	for _, e := range a {
		ea, oka := seq.Query(e.Item)
		eb, okb := bat.Query(e.Item)
		if oka != okb || ea != eb {
			t.Fatalf("Query(%d): sequential %+v/%v, batched %+v/%v",
				e.Item, ea, oka, eb, okb)
		}
	}
}

// TestInsertBatchEquivalenceLTC runs LTC under real eviction pressure in
// several configurations and asserts the batch path is bit-identical to
// per-item insertion.
func TestInsertBatchEquivalenceLTC(t *testing.T) {
	s := gen.NetworkLike(60_000, 3)
	per := s.ItemsPerPeriod()
	configs := map[string]Config{
		"default":  {MemoryBytes: 8 << 10, Weights: Balanced},
		"paced":    {MemoryBytes: 8 << 10, Weights: Balanced, ItemsPerPeriod: per},
		"basic":    {MemoryBytes: 8 << 10, Weights: Balanced, ItemsPerPeriod: per, DisableDeviationEliminator: true, DisableLongTailReplacement: true},
		"decay":    {MemoryBytes: 8 << 10, Weights: Balanced, ItemsPerPeriod: per, DecayFactor: 0.9},
		"frequent": {MemoryBytes: 4 << 10, Weights: Frequent, ItemsPerPeriod: per},
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			seq, bat := New(cfg), New(cfg)
			feedSequential(seq, s.Items, per)
			feedBatched(bat, s.Items, per)
			assertSameResults(t, seq, bat)
		})
	}
}

// TestInsertBatchEquivalenceWindow asserts the window tracker's batch path
// matches per-item insertion across block rotations.
func TestInsertBatchEquivalenceWindow(t *testing.T) {
	s := gen.NetworkLike(60_000, 4)
	per := s.ItemsPerPeriod()
	cfg := Config{MemoryBytes: 16 << 10, Weights: Balanced, ItemsPerPeriod: per}
	seq, bat := NewWindow(cfg, 8, 4), NewWindow(cfg, 8, 4)
	feedSequential(seq, s.Items, per)
	feedBatched(bat, s.Items, per)
	assertSameResults(t, seq, bat)
}

// TestInsertBatchEquivalenceSharded asserts the shard-partitioned batch
// path yields the same state as per-item insertion (single-threaded, so
// ordering within each shard is the only variable).
func TestInsertBatchEquivalenceSharded(t *testing.T) {
	s := gen.NetworkLike(60_000, 5)
	per := s.ItemsPerPeriod()
	cfg := Config{MemoryBytes: 64 << 10, Weights: Balanced, ItemsPerPeriod: per}
	for _, shards := range []int{1, 4, 7} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			seq, bat := NewSharded(cfg, shards), NewSharded(cfg, shards)
			feedSequential(seq, s.Items, per)
			feedBatched(bat, s.Items, per)
			assertSameResults(t, seq, bat)
		})
	}
}

// TestInsertBatchEquivalenceBaselines drives every baseline through the
// generic fallback adapter and asserts batch and per-item feeding agree.
func TestInsertBatchEquivalenceBaselines(t *testing.T) {
	s := gen.NetworkLike(40_000, 6)
	per := s.ItemsPerPeriod()
	for _, kind := range Baselines() {
		t.Run(kind.String(), func(t *testing.T) {
			cfg := Config{MemoryBytes: 8 << 10, TopK: 50,
				ExpectedDistinct: s.Distinct()}
			seq, bat := NewBaseline(kind, cfg), NewBaseline(kind, cfg)
			feedSequential(seq, s.Items, per)
			feedBatched(bat, s.Items, per)
			assertSameResults(t, seq, bat)
		})
	}
}

// TestInsertBatchHelperFallback checks the package-level helper on a
// Tracker implementation that has no native batch path at all.
func TestInsertBatchHelperFallback(t *testing.T) {
	tr := plainTracker{inner: New(Config{MemoryBytes: 8 << 10})}
	InsertBatch(tr, []Item{1, 2, 3, 2, 1, 1})
	tr.EndPeriod()
	if e, ok := tr.Query(1); !ok || e.Frequency != 3 {
		t.Fatalf("item 1: %+v ok=%v, want frequency 3", e, ok)
	}
}

// plainTracker hides the inner tracker's InsertBatch so the helper's
// per-item fallback branch is exercised.
type plainTracker struct{ inner *LTC }

func (p plainTracker) Insert(item Item)              { p.inner.Insert(item) }
func (p plainTracker) EndPeriod()                    { p.inner.EndPeriod() }
func (p plainTracker) Query(item Item) (Entry, bool) { return p.inner.Query(item) }
func (p plainTracker) TopK(k int) []Entry            { return p.inner.TopK(k) }
func (p plainTracker) MemoryBytes() int              { return p.inner.MemoryBytes() }
func (p plainTracker) Name() string                  { return p.inner.Name() }

// TestEveryPublicTrackerImplementsBatchInserter pins the API guarantee
// that all constructors return batch-capable trackers.
func TestEveryPublicTrackerImplementsBatchInserter(t *testing.T) {
	trackers := []Tracker{
		New(Config{}),
		NewSharded(Config{}, 2),
		NewWindow(Config{}, 8, 2),
	}
	for _, kind := range Baselines() {
		trackers = append(trackers, NewBaseline(kind, Config{}))
	}
	for _, tr := range trackers {
		if _, ok := tr.(BatchInserter); !ok {
			t.Errorf("%s does not implement BatchInserter", tr.Name())
		}
	}
}
