package sigstream

import (
	"errors"
	"strings"
	"testing"
)

func TestValidateAcceptsSensibleConfigs(t *testing.T) {
	for _, c := range []Config{
		{},
		{MemoryBytes: 64 << 10, Weights: Balanced},
		{MemoryBytes: 1 << 20, Weights: Weights{Alpha: 1, Beta: 500},
			BucketWidth: 16, ItemsPerPeriod: 10_000, DecayFactor: 0.9},
		{MemoryBytes: 4096, PeriodDuration: 60},
		{DecayFactor: 1}, // 1 = disabled, valid
	} {
		if err := c.Validate(); err != nil {
			t.Fatalf("config %+v rejected: %v", c, err)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{MemoryBytes: -1}, "negative"},
		{Config{MemoryBytes: 8}, "below one cell"},
		{Config{Weights: Weights{Alpha: -1}}, "negative significance"},
		{Config{BucketWidth: -2}, "BucketWidth is negative"},
		{Config{BucketWidth: 1000}, "long scan"},
		{Config{ItemsPerPeriod: -5}, "ItemsPerPeriod"},
		{Config{PeriodDuration: -1}, "PeriodDuration"},
		{Config{DecayFactor: 1.5}, "DecayFactor outside"},
		{Config{DecayFactor: -0.1}, "DecayFactor outside"},
		{Config{DecayFactor: 0.001}, "erases nearly everything"},
		{Config{TopK: -1}, "TopK is negative"},
		{Config{Sketch: SketchKind(9)}, "unknown Sketch"},
		{Config{ExpectedDistinct: -3}, "ExpectedDistinct is negative"},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if err == nil {
			t.Fatalf("config %+v accepted", c.cfg)
		}
		if !errors.Is(err, ErrInvalidConfig) {
			t.Fatalf("error not wrapped: %v", err)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("error %q missing %q", err, c.want)
		}
	}
}

func TestValidateAggregatesProblems(t *testing.T) {
	err := Config{MemoryBytes: -1, DecayFactor: 2}.Validate()
	if err == nil {
		t.Fatal("bad config accepted")
	}
	if !strings.Contains(err.Error(), ";") {
		t.Fatalf("multiple problems not aggregated: %v", err)
	}
}

// mustPanicInvalid asserts fn panics with an ErrInvalidConfig-wrapped
// error, the documented constructor behavior for invalid configurations.
func mustPanicInvalid(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("%s accepted an invalid config", name)
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrInvalidConfig) {
			t.Fatalf("%s panicked with %v, want ErrInvalidConfig", name, r)
		}
	}()
	fn()
}

// TestConstructorsRejectInvalidConfig pins the shared validation story:
// every constructor routes through Config.Validate instead of silently
// clamping.
func TestConstructorsRejectInvalidConfig(t *testing.T) {
	bad := Config{MemoryBytes: -1}
	mustPanicInvalid(t, "New", func() { New(bad) })
	mustPanicInvalid(t, "NewSharded", func() { NewSharded(bad, 4) })
	mustPanicInvalid(t, "NewWindow", func() { NewWindow(bad, 8, 2) })
	mustPanicInvalid(t, "NewBaseline", func() { NewBaseline(SpaceSaving, bad) })
	mustPanicInvalid(t, "NewBaseline kind", func() {
		NewBaseline(BaselineKind(42), Config{})
	})
}

// TestNewBaselineDefaultsAndKinds smoke-tests every kind through the
// unified constructor with a zero config and checks the deprecated
// positional constructors build the same algorithm.
func TestNewBaselineDefaultsAndKinds(t *testing.T) {
	for _, kind := range Baselines() {
		tr := NewBaseline(kind, Config{})
		if tr.Name() == "" || tr.MemoryBytes() <= 0 {
			t.Fatalf("%v: bad zero-config tracker %q/%d",
				kind, tr.Name(), tr.MemoryBytes())
		}
		tr.Insert(1)
		tr.EndPeriod()
	}
	pairs := []struct {
		kind       BaselineKind
		deprecated Tracker
	}{
		{SpaceSaving, NewSpaceSaving(8<<10, 1)},
		{LossyCounting, NewLossyCounting(8<<10, 1)},
		{MisraGries, NewMisraGries(8<<10, 1)},
		{FrequentSketch, NewFrequentSketch(CU, 8<<10, 50, 1)},
		{PersistentSketch, NewPersistentSketch(CU, 8<<10, 50, 1)},
		{SignificantSketch, NewSignificantSketch(CU, 8<<10, 50, Balanced)},
		{PIE, NewPIE(8<<10, 1)},
		{Sampling, NewSampling(8<<10, 1000, Balanced)},
	}
	for _, p := range pairs {
		unified := NewBaseline(p.kind, Config{MemoryBytes: 8 << 10, TopK: 50,
			Sketch: CU, ExpectedDistinct: 1000,
			Weights: Weights{Alpha: 1, Beta: 1}})
		if unified.Name() != p.deprecated.Name() {
			t.Fatalf("%v: NewBaseline built %q, deprecated wrapper built %q",
				p.kind, unified.Name(), p.deprecated.Name())
		}
	}
}
