package sigstream

import (
	"errors"
	"strings"
	"testing"
)

func TestValidateAcceptsSensibleConfigs(t *testing.T) {
	for _, c := range []Config{
		{},
		{MemoryBytes: 64 << 10, Weights: Balanced},
		{MemoryBytes: 1 << 20, Weights: Weights{Alpha: 1, Beta: 500},
			BucketWidth: 16, ItemsPerPeriod: 10_000, DecayFactor: 0.9},
		{MemoryBytes: 4096, PeriodDuration: 60},
		{DecayFactor: 1}, // 1 = disabled, valid
	} {
		if err := c.Validate(); err != nil {
			t.Fatalf("config %+v rejected: %v", c, err)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{MemoryBytes: -1}, "negative"},
		{Config{MemoryBytes: 8}, "below one cell"},
		{Config{Weights: Weights{Alpha: -1}}, "negative significance"},
		{Config{BucketWidth: -2}, "BucketWidth is negative"},
		{Config{BucketWidth: 1000}, "long scan"},
		{Config{ItemsPerPeriod: -5}, "ItemsPerPeriod"},
		{Config{PeriodDuration: -1}, "PeriodDuration"},
		{Config{DecayFactor: 1.5}, "DecayFactor outside"},
		{Config{DecayFactor: -0.1}, "DecayFactor outside"},
		{Config{DecayFactor: 0.001}, "erases nearly everything"},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if err == nil {
			t.Fatalf("config %+v accepted", c.cfg)
		}
		if !errors.Is(err, ErrInvalidConfig) {
			t.Fatalf("error not wrapped: %v", err)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("error %q missing %q", err, c.want)
		}
	}
}

func TestValidateAggregatesProblems(t *testing.T) {
	err := Config{MemoryBytes: -1, DecayFactor: 2}.Validate()
	if err == nil {
		t.Fatal("bad config accepted")
	}
	if !strings.Contains(err.Error(), ";") {
		t.Fatalf("multiple problems not aggregated: %v", err)
	}
}
