package sigstream

import (
	"testing"
)

func TestNewDefaultsToBalanced(t *testing.T) {
	tr := New(Config{MemoryBytes: 1 << 16})
	for p := 0; p < 3; p++ {
		tr.Insert(7)
		tr.EndPeriod()
	}
	e, ok := tr.Query(7)
	if !ok {
		t.Fatal("item lost")
	}
	if e.Frequency != 3 || e.Persistency != 3 {
		t.Fatalf("f=%d p=%d, want 3/3", e.Frequency, e.Persistency)
	}
	if e.Significance != 6 {
		t.Fatalf("balanced significance = %v, want 6", e.Significance)
	}
	if tr.Name() != "LTC" {
		t.Fatalf("name = %q", tr.Name())
	}
}

func TestLTCDiagnostics(t *testing.T) {
	tr := New(Config{MemoryBytes: 1 << 14, BucketWidth: 4})
	if tr.BucketWidth() != 4 {
		t.Fatalf("d = %d, want 4", tr.BucketWidth())
	}
	if tr.Buckets() <= 0 {
		t.Fatal("no buckets")
	}
	tr.Insert(1)
	if tr.Occupancy() != 1 {
		t.Fatalf("occupancy = %d, want 1", tr.Occupancy())
	}
}

func TestAllConstructorsSatisfyTracker(t *testing.T) {
	k := 10
	trackers := []Tracker{
		New(Config{MemoryBytes: 4096, Weights: Balanced}),
		NewSpaceSaving(4096, 1),
		NewLossyCounting(4096, 1),
		NewFrequentSketch(CM, 4096, k, 1),
		NewFrequentSketch(CU, 4096, k, 1),
		NewFrequentSketch(Count, 4096, k, 1),
		NewPersistentSketch(CM, 4096, k, 1),
		NewPersistentSketch(CU, 4096, k, 1),
		NewPersistentSketch(Count, 4096, k, 1),
		NewSignificantSketch(CM, 8192, k, Balanced),
		NewSignificantSketch(CU, 8192, k, Balanced),
		NewPIE(4096, 1),
		NewMisraGries(4096, 1),
		NewSampling(8192, 20, Balanced),
		NewWindow(Config{MemoryBytes: 16 << 10}, 8, 2),
	}
	seen := map[string]bool{}
	for _, tr := range trackers {
		// Six periods: PIE's fountain decode needs at least four clean
		// periods per item before an ID can be reconstructed.
		for p := 0; p < 6; p++ {
			for i := Item(1); i <= 20; i++ {
				tr.Insert(i)
			}
			tr.EndPeriod()
		}
		if tr.Name() == "" {
			t.Fatal("empty tracker name")
		}
		if seen[tr.Name()] {
			t.Fatalf("duplicate tracker name %q", tr.Name())
		}
		seen[tr.Name()] = true
		if tr.MemoryBytes() <= 0 {
			t.Fatalf("%s: non-positive memory", tr.Name())
		}
		top := tr.TopK(5)
		if len(top) == 0 {
			t.Fatalf("%s: empty TopK after 120 arrivals", tr.Name())
		}
		for i := 1; i < len(top); i++ {
			if top[i].Significance > top[i-1].Significance {
				t.Fatalf("%s: TopK not sorted", tr.Name())
			}
		}
	}
}

func TestWeightsSignificance(t *testing.T) {
	w := Weights{Alpha: 3, Beta: 2}
	if got := w.Significance(4, 5); got != 22 {
		t.Fatalf("Significance = %v, want 22", got)
	}
	if Frequent.Significance(4, 5) != 4 || Persistent.Significance(4, 5) != 5 {
		t.Fatal("preset weights wrong")
	}
}

func TestHashKeyStableAndDistinct(t *testing.T) {
	a := HashKey("alice")
	if a != HashKey("alice") {
		t.Fatal("HashKey not deterministic")
	}
	if a == HashKey("bob") {
		t.Fatal("distinct keys collided")
	}
	if HashKey("") == HashKey("x") {
		t.Fatal("empty key collided")
	}
}

func TestKeyMap(t *testing.T) {
	m := NewKeyMap()
	it := m.Intern("alice")
	if it != HashKey("alice") {
		t.Fatal("Intern must agree with HashKey")
	}
	if got, ok := m.Lookup(it); !ok || got != "alice" {
		t.Fatalf("Lookup = %q/%v", got, ok)
	}
	if m.Name(it) != "alice" {
		t.Fatal("Name must resolve interned keys")
	}
	if m.Name(0xabc) == "" {
		t.Fatal("Name must render unknown items")
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
}

func TestEndToEndSignificantRanking(t *testing.T) {
	// A persistent moderate item must outrank a one-period burst under
	// persistency-weighted significance, using only the public API.
	tr := New(Config{MemoryBytes: 1 << 16, Weights: Weights{Alpha: 1, Beta: 100}})
	keys := NewKeyMap()
	burst, steady := keys.Intern("burst"), keys.Intern("steady")
	for p := 0; p < 10; p++ {
		if p == 0 {
			for i := 0; i < 500; i++ {
				tr.Insert(burst)
			}
		}
		for i := 0; i < 5; i++ {
			tr.Insert(steady)
		}
		tr.EndPeriod()
	}
	top := tr.TopK(2)
	if len(top) != 2 {
		t.Fatalf("TopK returned %d entries", len(top))
	}
	if keys.Name(top[0].Item) != "steady" {
		t.Fatalf("top item = %s, want steady", keys.Name(top[0].Item))
	}
}
