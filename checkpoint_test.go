package sigstream

import (
	"errors"
	"testing"
)

func TestMergeCheckpoints(t *testing.T) {
	cfg := Config{MemoryBytes: 16 << 10, Seed: 3}
	images := make([][]byte, 3)
	for site := 0; site < 3; site++ {
		tr := New(cfg)
		for p := 0; p < 2; p++ {
			for i := 0; i < 5; i++ {
				tr.Insert(Item(site*100 + i + 1))
			}
			tr.EndPeriod()
		}
		img, err := tr.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		images[site] = img
	}
	global, err := MergeCheckpoints(images...)
	if err != nil {
		t.Fatal(err)
	}
	for site := 0; site < 3; site++ {
		e, ok := global.Query(Item(site*100 + 1))
		if !ok || e.Frequency != 2 || e.Persistency != 2 {
			t.Fatalf("site %d item missing or wrong: %+v ok=%v", site, e, ok)
		}
	}
}

func TestMergeCheckpointsErrors(t *testing.T) {
	if _, err := MergeCheckpoints(); !errors.Is(err, ErrNoCheckpoints) {
		t.Fatalf("want ErrNoCheckpoints, got %v", err)
	}
	if _, err := MergeCheckpoints([]byte("garbage")); err == nil {
		t.Fatal("garbage checkpoint accepted")
	}
	// Valid first + garbage second.
	tr := New(Config{MemoryBytes: 4096})
	tr.Insert(1)
	img, _ := tr.MarshalBinary()
	if _, err := MergeCheckpoints(img, []byte("garbage")); err == nil {
		t.Fatal("garbage second checkpoint accepted")
	}
	// Incompatible configurations.
	other := New(Config{MemoryBytes: 8192})
	other.Insert(2)
	img2, _ := other.MarshalBinary()
	if _, err := MergeCheckpoints(img, img2); err == nil {
		t.Fatal("incompatible checkpoints accepted")
	}
}
