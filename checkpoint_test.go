package sigstream

import (
	"errors"
	"testing"
)

func TestMergeCheckpoints(t *testing.T) {
	cfg := Config{MemoryBytes: 16 << 10, Seed: 3}
	images := make([][]byte, 3)
	for site := 0; site < 3; site++ {
		tr := New(cfg)
		for p := 0; p < 2; p++ {
			for i := 0; i < 5; i++ {
				tr.Insert(Item(site*100 + i + 1))
			}
			tr.EndPeriod()
		}
		img, err := tr.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		images[site] = img
	}
	global, err := MergeCheckpoints(images...)
	if err != nil {
		t.Fatal(err)
	}
	for site := 0; site < 3; site++ {
		e, ok := global.Query(Item(site*100 + 1))
		if !ok || e.Frequency != 2 || e.Persistency != 2 {
			t.Fatalf("site %d item missing or wrong: %+v ok=%v", site, e, ok)
		}
	}
}

func TestMergeShardedCheckpoints(t *testing.T) {
	cfg := Config{MemoryBytes: 64 << 10, Seed: 3}
	const shards = 4
	images := make([][]byte, 3)
	for site := 0; site < 3; site++ {
		tr := NewSharded(cfg, shards)
		for p := 0; p < 2; p++ {
			for i := 0; i < 5; i++ {
				tr.Insert(Item(site*100 + i + 1))
			}
			tr.EndPeriod()
		}
		img, err := tr.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		images[site] = img
	}
	global, err := MergeShardedCheckpoints(images...)
	if err != nil {
		t.Fatal(err)
	}
	if global.Shards() != shards {
		t.Fatalf("merged tracker has %d shards, want %d", global.Shards(), shards)
	}
	for site := 0; site < 3; site++ {
		for i := 0; i < 5; i++ {
			item := Item(site*100 + i + 1)
			e, ok := global.Query(item)
			if !ok || e.Frequency != 2 || e.Persistency != 2 {
				t.Fatalf("site %d item %d missing or wrong: %+v ok=%v", site, item, e, ok)
			}
		}
	}
	// The merged view's top-k sees every site's items.
	if got := len(global.TopK(32)); got != 15 {
		t.Fatalf("merged TopK holds %d items, want 15", got)
	}
}

func TestMergeShardedCheckpointsErrors(t *testing.T) {
	if _, err := MergeShardedCheckpoints(); !errors.Is(err, ErrNoCheckpoints) {
		t.Fatalf("want ErrNoCheckpoints, got %v", err)
	}
	if _, err := MergeShardedCheckpoints([]byte("garbage")); err == nil {
		t.Fatal("garbage checkpoint accepted")
	}
	cfg := Config{MemoryBytes: 64 << 10, Seed: 3}
	a := NewSharded(cfg, 4)
	a.Insert(1)
	imgA, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeShardedCheckpoints(imgA, []byte("garbage")); err == nil {
		t.Fatal("garbage second checkpoint accepted")
	}
	// Mismatched shard counts must be rejected, not silently cross-merged.
	b := NewSharded(cfg, 2)
	b.Insert(2)
	imgB, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeShardedCheckpoints(imgA, imgB); err == nil {
		t.Fatal("mismatched shard counts accepted")
	}
	// Same shard count, different geometry: the per-shard merge must fail.
	c := NewSharded(Config{MemoryBytes: 128 << 10, Seed: 3}, 4)
	c.Insert(3)
	imgC, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeShardedCheckpoints(imgA, imgC); err == nil {
		t.Fatal("incompatible shard geometry accepted")
	}
}

func TestMergeCheckpointsErrors(t *testing.T) {
	if _, err := MergeCheckpoints(); !errors.Is(err, ErrNoCheckpoints) {
		t.Fatalf("want ErrNoCheckpoints, got %v", err)
	}
	if _, err := MergeCheckpoints([]byte("garbage")); err == nil {
		t.Fatal("garbage checkpoint accepted")
	}
	// Valid first + garbage second.
	tr := New(Config{MemoryBytes: 4096})
	tr.Insert(1)
	img, _ := tr.MarshalBinary()
	if _, err := MergeCheckpoints(img, []byte("garbage")); err == nil {
		t.Fatal("garbage second checkpoint accepted")
	}
	// Incompatible configurations.
	other := New(Config{MemoryBytes: 8192})
	other.Insert(2)
	img2, _ := other.MarshalBinary()
	if _, err := MergeCheckpoints(img, img2); err == nil {
		t.Fatal("incompatible checkpoints accepted")
	}
}
