// Network congestion mitigation (the paper's Use Case 3): when a link
// congests, rerouting should target flows that will STAY large — frequent
// AND persistent — because rerouting a burst wastes a forwarding-table
// update on traffic that disappears next period.
//
// This example simulates a congested link, picks reroute candidates with a
// frequency-only detector and with a significance detector, and scores each
// choice by how much traffic the rerouted flows actually carry in the
// FOLLOWING periods.
//
// Run:
//
//	go run ./examples/congestion
package main

import (
	"fmt"
	"math/rand"

	"sigstream"
)

const (
	observePeriods = 10 // periods the detectors watch before rerouting
	futurePeriods  = 10 // periods used to score the decision
	rerouteBudget  = 20 // forwarding entries we are willing to change
	elephants      = 15 // long-lived large flows
	bursts         = 30 // short-lived large flows (one period each)
)

type flowTraffic map[uint64][]int // flow → packets per period

// synthesize builds per-period traffic: persistent elephants, one-period
// bursts, and background mice.
func synthesize(rng *rand.Rand) flowTraffic {
	total := observePeriods + futurePeriods
	tr := flowTraffic{}
	for f := 0; f < elephants; f++ {
		id := uint64(f + 1)
		tr[id] = make([]int, total)
		for p := 0; p < total; p++ {
			tr[id][p] = 800 + rng.Intn(400)
		}
	}
	for b := 0; b < bursts; b++ {
		id := uint64(b + 10_001)
		tr[id] = make([]int, total)
		// Each burst lives in exactly one observed period, heavier than an
		// elephant while it lasts.
		tr[id][rng.Intn(observePeriods)] = 3_000 + rng.Intn(2_000)
	}
	for m := 0; m < 5_000; m++ {
		id := uint64(m + 100_001)
		tr[id] = make([]int, total)
		for p := 0; p < total; p++ {
			tr[id][p] = rng.Intn(4)
		}
	}
	return tr
}

func main() {
	rng := rand.New(rand.NewSource(11))
	traffic := synthesize(rng)

	byFreq := sigstream.New(sigstream.Config{
		MemoryBytes: 32 << 10, Weights: sigstream.Frequent, Seed: 1})
	bySig := sigstream.New(sigstream.Config{
		MemoryBytes: 32 << 10,
		Weights:     sigstream.Weights{Alpha: 1, Beta: 1500}, Seed: 2})

	// Observation phase: replay the first observePeriods into both.
	for p := 0; p < observePeriods; p++ {
		for id, per := range traffic {
			for i := 0; i < per[p]; i++ {
				byFreq.Insert(id)
				bySig.Insert(id)
			}
		}
		byFreq.EndPeriod()
		bySig.EndPeriod()
	}

	// Decision: reroute the top flows under each policy.
	futureBytes := func(id uint64) int {
		total := 0
		for p := observePeriods; p < observePeriods+futurePeriods; p++ {
			total += traffic[id][p]
		}
		return total
	}
	score := func(name string, tr sigstream.Tracker) {
		moved := 0
		useful := 0
		for _, e := range tr.TopK(rerouteBudget) {
			fb := futureBytes(e.Item)
			moved += fb
			if fb > 0 {
				useful++
			}
		}
		fmt.Printf("%-24s %2d/%d rerouted flows still carry traffic; "+
			"future packets moved off the hot link: %d\n",
			name, useful, rerouteBudget, moved)
	}

	fmt.Printf("rerouting %d flows after %d observation periods:\n\n",
		rerouteBudget, observePeriods)
	score("frequency policy:", byFreq)
	score("significance policy:", bySig)

	fmt.Println("\nsignificance policy's picks (elephants are flows 1..15):")
	for i, e := range bySig.TopK(10) {
		kind := "burst/mouse"
		if e.Item <= elephants {
			kind = "elephant"
		}
		fmt.Printf("%2d. flow=%-7d f=%-6d p=%-3d %s\n",
			i+1, e.Item, e.Frequency, e.Persistency, kind)
	}
}
