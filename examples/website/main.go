// Website popularity ranking (the paper's Use Case 2): rank sites by a
// popularity blending how often users visit (frequency) and whether the
// site is popular all the time (persistency). String keys are interned
// through sigstream.KeyMap.
//
// Run:
//
//	go run ./examples/website
package main

import (
	"fmt"
	"math/rand"

	"sigstream"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	tr := sigstream.New(sigstream.Config{
		MemoryBytes: 32 << 10,
		Weights:     sigstream.Weights{Alpha: 1, Beta: 200},
	})
	keys := sigstream.NewKeyMap()

	// Simulated visit log over 30 daily periods.
	evergreen := []string{"search.example", "mail.example", "news.example",
		"wiki.example", "video.example"}
	const days = 30
	for day := 0; day < days; day++ {
		// Evergreen sites: steady daily traffic.
		for i, site := range evergreen {
			visits := 300 - 40*i
			for v := 0; v < visits; v++ {
				tr.Insert(keys.Intern(site))
			}
		}
		// A viral page: enormous traffic for three days, then gone.
		if day >= 10 && day < 13 {
			for v := 0; v < 15_000; v++ {
				tr.Insert(keys.Intern("viral-meme.example"))
			}
		}
		// Long tail of small sites with a few visits each.
		for v := 0; v < 5_000; v++ {
			site := fmt.Sprintf("blog-%04d.example", rng.Intn(2000))
			tr.Insert(keys.Intern(site))
		}
		tr.EndPeriod() // midnight
	}

	fmt.Printf("site ranking after %d days (α=1, β=200):\n", days)
	fmt.Printf("%-4s %-22s %9s %6s %12s\n", "#", "site", "visits", "days", "popularity")
	for i, e := range tr.TopK(8) {
		fmt.Printf("%-4d %-22s %9d %6d %12.0f\n", i+1, keys.Name(e.Item),
			e.Frequency, e.Persistency, e.Significance)
	}

	// The viral page had more raw visits than several evergreen sites —
	// show where each ranking style places it.
	viral, _ := tr.Query(sigstream.HashKey("viral-meme.example"))
	top, _ := tr.Query(sigstream.HashKey("search.example"))
	fmt.Printf("\nviral-meme.example: %d visits in %d days → popularity %.0f\n",
		viral.Frequency, viral.Persistency, viral.Significance)
	fmt.Printf("search.example:     %d visits in %d days → popularity %.0f\n",
		top.Frequency, top.Persistency, top.Significance)
}
