// Quickstart: track top-k significant items in a synthetic stream with the
// public sigstream API.
//
// Run:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"sigstream"
)

func main() {
	// One tracker, 64 KiB of memory, significance = 1·frequency +
	// 50·persistency: an item appearing in every period is worth as much
	// as one appearing 50 extra times.
	tr := sigstream.New(sigstream.Config{
		MemoryBytes: 64 << 10,
		Weights:     sigstream.Weights{Alpha: 1, Beta: 50},
	})

	rng := rand.New(rand.NewSource(1))
	const periods = 24 // e.g. one day in hourly periods

	for p := 0; p < periods; p++ {
		// Background noise: 20k arrivals spread over 5k random items.
		for i := 0; i < 20_000; i++ {
			tr.Insert(uint64(rng.Intn(5000) + 1000))
		}
		// Item 1: steady presence, 30 arrivals every period.
		for i := 0; i < 30; i++ {
			tr.Insert(1)
		}
		// Item 2: one enormous burst in period 3 only.
		if p == 3 {
			for i := 0; i < 3000; i++ {
				tr.Insert(2)
			}
		}
		tr.EndPeriod() // period boundary — hourly tick
	}

	fmt.Println("top-5 significant items (α=1, β=50):")
	fmt.Printf("%-4s %-8s %10s %12s %14s\n", "#", "item", "frequency",
		"persistency", "significance")
	for i, e := range tr.TopK(5) {
		fmt.Printf("%-4d %-8d %10d %12d %14.0f\n",
			i+1, e.Item, e.Frequency, e.Persistency, e.Significance)
	}

	// Point queries work too.
	if e, ok := tr.Query(1); ok {
		fmt.Printf("\nitem 1: seen %d times across %d of %d periods\n",
			e.Frequency, e.Persistency, periods)
	}
	fmt.Printf("structure: %d buckets × %d cells, %d bytes\n",
		tr.Buckets(), tr.BucketWidth(), tr.MemoryBytes())
}
