// Distributed aggregation: the paper's Use Case 3 closes with "if
// persistent flows all over the data center can be efficiently identified,
// we can make a global solution". This example runs one LTC per simulated
// switch, ships each tracker's binary checkpoint to an aggregator (here:
// a byte slice standing in for the network), merges them, and reports the
// data-center-wide significant flows.
//
// Flows are hash-partitioned across switches (as an L3 fabric would), so
// each flow's state lives on exactly one switch and the merge is exact up
// to LTC's own approximation.
//
// Run:
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sigstream"
)

const (
	switches = 8
	periods  = 12
	flows    = 4000
	elephant = 40 // persistent heavy flows
)

func main() {
	// Every switch runs the same configuration — a requirement for Merge.
	cfg := sigstream.Config{
		MemoryBytes: 16 << 10,
		Weights:     sigstream.Weights{Alpha: 1, Beta: 500},
		Seed:        7,
	}
	site := make([]*sigstream.LTC, switches)
	for i := range site {
		site[i] = sigstream.New(cfg)
	}

	// Traffic: elephants (flows 1..elephant) send every period through
	// their home switch; the rest are mice and bursts.
	rng := rand.New(rand.NewSource(3))
	home := func(flow uint64) int { return int(flow % switches) }
	for p := 0; p < periods; p++ {
		for f := uint64(1); f <= elephant; f++ {
			for i := 0; i < 200+rng.Intn(100); i++ {
				site[home(f)].Insert(f)
			}
		}
		for i := 0; i < 30000; i++ {
			f := uint64(rng.Intn(flows) + 1000)
			site[home(f)].Insert(f)
		}
		for _, s := range site {
			s.EndPeriod()
		}
	}

	// Each switch exports a checkpoint; the aggregator restores and merges.
	checkpoints := make([][]byte, switches)
	for i, s := range site {
		img, err := s.MarshalBinary()
		if err != nil {
			log.Fatalf("switch %d export: %v", i, err)
		}
		checkpoints[i] = img
		fmt.Printf("switch %d exported %5d bytes (%d cells occupied)\n",
			i, len(img), s.Occupancy())
	}

	global := sigstream.New(cfg)
	if err := global.UnmarshalBinary(checkpoints[0]); err != nil {
		log.Fatal(err)
	}
	for _, img := range checkpoints[1:] {
		shard := sigstream.New(cfg)
		if err := shard.UnmarshalBinary(img); err != nil {
			log.Fatal(err)
		}
		if err := global.Merge(shard); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("\ndata-center-wide significant flows (top 10 of %d switches):\n", switches)
	fmt.Printf("%-4s %-8s %10s %12s %7s\n", "#", "flow", "packets", "periods", "kind")
	hit := 0
	for i, e := range global.TopK(10) {
		kind := "other"
		if e.Item <= elephant {
			kind = "elephant"
			hit++
		}
		fmt.Printf("%-4d %-8d %10d %12d %7s\n", i+1, e.Item, e.Frequency,
			e.Persistency, kind)
	}
	fmt.Printf("\n%d/10 of the global top-10 are true persistent elephants\n", hit)
}
