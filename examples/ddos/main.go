// DDoS detection (the paper's Use Case 1): attack sources are both
// frequent AND persistent, while legitimate flash crowds are frequent but
// short-lived. Ranking by significance separates them where a pure
// frequency ranking cannot.
//
// Run:
//
//	go run ./examples/ddos
package main

import (
	"fmt"
	"math/rand"

	"sigstream"
)

const (
	periods      = 48 // 48 five-minute windows ≈ 4 hours of traffic
	attackers    = 25 // bots: moderate rate, every period
	flashSources = 25 // flash-crowd clients: huge rate, 2 periods
	background   = 40_000
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// Two trackers over the same packet stream: one ranking by pure
	// frequency (what a heavy-hitter detector sees) and one by
	// significance with a strong persistency weight.
	byFreq := sigstream.New(sigstream.Config{
		MemoryBytes: 64 << 10, Weights: sigstream.Frequent, Seed: 1,
	})
	bySig := sigstream.New(sigstream.Config{
		MemoryBytes: 64 << 10,
		Weights:     sigstream.Weights{Alpha: 1, Beta: 400},
		Seed:        2,
	})

	flashPeriod := periods / 2
	for p := 0; p < periods; p++ {
		n := background
		for i := 0; i < n; i++ {
			// Background: long-tail of ordinary clients.
			src := uint64(rng.Intn(20_000) + 1_000_000)
			byFreq.Insert(src)
			bySig.Insert(src)
		}
		// Attackers: 60 packets per bot per period, all periods.
		for bot := 0; bot < attackers; bot++ {
			for i := 0; i < 60; i++ {
				src := uint64(bot + 1)
				byFreq.Insert(src)
				bySig.Insert(src)
			}
		}
		// Flash crowd: brief, very heavy (a popular livestream).
		if p == flashPeriod || p == flashPeriod+1 {
			for c := 0; c < flashSources; c++ {
				for i := 0; i < 2_000; i++ {
					src := uint64(c + 500_001)
					byFreq.Insert(src)
					bySig.Insert(src)
				}
			}
		}
		byFreq.EndPeriod()
		bySig.EndPeriod()
	}

	isAttacker := func(it uint64) bool { return it >= 1 && it <= attackers }
	score := func(name string, tr sigstream.Tracker) {
		top := tr.TopK(attackers)
		hits := 0
		for _, e := range top {
			if isAttacker(e.Item) {
				hits++
			}
		}
		fmt.Printf("%-22s caught %2d/%d attackers in its top-%d\n",
			name, hits, attackers, attackers)
	}

	fmt.Println("Who sits in the top-25 suspicious sources?")
	score("frequency ranking:", byFreq)
	score("significance ranking:", bySig)

	fmt.Println("\nsignificance top-10 (bots are items 1..25, flash crowd 500001..):")
	for i, e := range bySig.TopK(10) {
		tag := "flash/benign"
		if isAttacker(e.Item) {
			tag = "ATTACKER"
		}
		fmt.Printf("%2d. src=%-8d f=%-6d p=%-3d s=%-9.0f %s\n",
			i+1, e.Item, e.Frequency, e.Persistency, e.Significance, tag)
	}
}
