// Trending topics: "significant LATELY" instead of all-history. Two
// recency mechanisms ship with the library —
//
//   - a jumping window (sigstream.NewWindow): hard cutoff, last W periods;
//   - exponential decay (Config.DecayFactor): soft aging, smooth half-life.
//
// This example streams hashtag mentions through three trackers (all-time,
// windowed, decayed) across a day where the news cycle turns over, and
// shows how each ranking responds.
//
// Run:
//
//	go run ./examples/trending
package main

import (
	"fmt"
	"math/rand"
	"strings"

	"sigstream"
)

const hours = 24

// mentionRate returns tag → mentions for a given hour.
func mentionRate(hour int) map[string]int {
	rates := map[string]int{
		"#weather": 40, // evergreen background chatter
		"#traffic": 30,
	}
	switch {
	case hour < 10: // morning story dominates early
		rates["#morning-scandal"] = 500
	case hour < 14: // dead news hours
		rates["#morning-scandal"] = 40
	default: // evening breaking news takes over
		rates["#breaking-now"] = 450
		rates["#morning-scandal"] = 10
	}
	return rates
}

func main() {
	keys := sigstream.NewKeyMap()
	weights := sigstream.Weights{Alpha: 1, Beta: 50}

	allTime := sigstream.New(sigstream.Config{
		MemoryBytes: 32 << 10, Weights: weights})
	windowed := sigstream.NewWindow(sigstream.Config{
		MemoryBytes: 32 << 10, Weights: weights}, 6, 3) // last 6 hours
	decayed := sigstream.New(sigstream.Config{
		MemoryBytes: 32 << 10, Weights: weights,
		DecayFactor: 0.7}) // half-life ≈ 2 hours

	rng := rand.New(rand.NewSource(1))
	trackers := []sigstream.Tracker{allTime, windowed, decayed}
	for hour := 0; hour < hours; hour++ {
		for tag, rate := range mentionRate(hour) {
			item := keys.Intern(tag)
			for i := 0; i < rate; i++ {
				for _, tr := range trackers {
					tr.Insert(item)
				}
			}
		}
		// Long tail of one-off tags.
		for i := 0; i < 2000; i++ {
			item := keys.Intern(fmt.Sprintf("#misc-%05d", rng.Intn(20000)))
			for _, tr := range trackers {
				tr.Insert(item)
			}
		}
		for _, tr := range trackers {
			tr.EndPeriod() // hourly tick
		}
	}

	show := func(name string, tr sigstream.Tracker) {
		var tags []string
		for _, e := range tr.TopK(3) {
			tags = append(tags, keys.Name(e.Item))
		}
		fmt.Printf("%-22s %s\n", name+":", strings.Join(tags, "  "))
	}
	fmt.Printf("rankings at hour %d (evening — #breaking-now is the story):\n\n", hours)
	show("all-time", allTime)
	show("window (last 6h)", windowed)
	show("decay (t½≈2h)", decayed)

	fmt.Println("\nwhere did the morning story go?")
	for name, tr := range map[string]sigstream.Tracker{
		"all-time": allTime, "windowed": windowed, "decayed": decayed,
	} {
		if e, ok := tr.Query(keys.Intern("#morning-scandal")); ok {
			fmt.Printf("  %-9s still credits it %.0f significance\n", name, e.Significance)
		} else {
			fmt.Printf("  %-9s forgot it entirely\n", name)
		}
	}
}
