// Package sigstream finds top-k significant items in data streams.
//
// It is a Go implementation of "Finding Significant Items in Data Streams"
// (ICDE 2019): a stream divided into equal periods is summarized so that,
// at any point, the k items with the largest significance
//
//	s(e) = α·frequency(e) + β·persistency(e)
//
// can be reported — where frequency is an item's total number of
// appearances and persistency is the number of periods in which it appeared
// at least once. α=1, β=0 recovers classic top-k frequent items; α=0, β=1
// recovers top-k persistent items; mixed weights find items that are both
// frequent and persistent (DDoS sources, evergreen content, stable heavy
// flows).
//
// The primary structure is LTC (Long-Tail CLOCK), created with New. It
// combines a lossy table with Significance Decrementing, a modified CLOCK
// sweep that counts persistency at most once per period, a Deviation
// Eliminator that removes all overestimation, and Long-tail Replacement,
// which initializes newly admitted items from the bucket's second-smallest
// value.
//
// Basic usage:
//
//	tr := sigstream.New(sigstream.Config{
//		MemoryBytes: 64 << 10,
//		Weights:     sigstream.Weights{Alpha: 1, Beta: 1},
//	})
//	for _, ev := range arrivals {
//		tr.Insert(ev)
//	}
//	tr.EndPeriod() // at each period boundary
//	for _, e := range tr.TopK(100) {
//		fmt.Println(e.Item, e.Significance)
//	}
//
// For high-rate ingestion, feed arrivals in batches: every tracker in this
// package implements the optional BatchInserter interface, and
// tr.InsertBatch(items) is semantically identical to inserting each item
// in order while amortizing the per-arrival overhead (for the concurrent
// Sharded tracker, one lock round-trip per shard per batch instead of one
// per item). The package-level InsertBatch helper feeds any Tracker,
// falling back to per-item insertion.
//
// The package also ships the baselines the paper compares against —
// Space-Saving, Lossy Counting, Count/CM/CU sketches with top-k heaps,
// sketch+Bloom-filter persistency adapters, and PIE — behind the same
// Tracker interface, so head-to-head evaluations are one loop. All eight
// are built by one constructor, NewBaseline(kind, cfg), from the same
// Config that drives New; the positional constructors (NewSpaceSaving,
// NewPIE, …) remain as deprecated wrappers. Constructors apply documented
// defaults to zero Config fields and panic on invalid configurations;
// validate untrusted input first with Config.Validate.
package sigstream
