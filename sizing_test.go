package sigstream

import (
	"testing"

	"sigstream/internal/gen"
	"sigstream/internal/oracle"
	"sigstream/internal/stream"
)

func TestSuggestMemoryBytesReachesTarget(t *testing.T) {
	w := Workload{Arrivals: 200_000, Distinct: 20_000, Skew: 1.0}
	mem := SuggestMemoryBytes(w, 100, 0.95)
	if mem <= 0 {
		t.Fatal("no suggestion for a plausible workload")
	}
	// Validate empirically: an LTC sized to the suggestion must reach the
	// target precision on a matching synthetic stream (the bound is a lower
	// bound, so this should pass with margin).
	s := gen.ZipfStream(w.Arrivals, w.Distinct, 20, w.Skew, 5)
	o := oracle.FromStream(s, stream.Frequent)
	tr := New(Config{MemoryBytes: mem, Weights: Frequent,
		ItemsPerPeriod: s.ItemsPerPeriod()})
	for i, it := range s.Items {
		tr.Insert(it)
		if (i+1)%s.ItemsPerPeriod() == 0 {
			tr.EndPeriod()
		}
	}
	truth := map[Item]bool{}
	for _, e := range o.TopK(100) {
		truth[e.Item] = true
	}
	hits := 0
	for _, e := range tr.TopK(100) {
		if truth[e.Item] {
			hits++
		}
	}
	if p := float64(hits) / 100; p < 0.95 {
		t.Fatalf("suggested %d bytes reached only %.2f precision", mem, p)
	}
}

func TestSuggestMemoryBytesMonotone(t *testing.T) {
	w := Workload{Arrivals: 500_000, Distinct: 50_000, Skew: 1.0}
	loose := SuggestMemoryBytes(w, 100, 0.6)
	tight := SuggestMemoryBytes(w, 100, 0.99)
	if loose <= 0 || tight <= 0 {
		t.Fatal("no suggestions")
	}
	if tight < loose {
		t.Fatalf("stricter target suggested less memory: %d < %d", tight, loose)
	}
}

func TestSuggestMemoryBytesDegenerate(t *testing.T) {
	if SuggestMemoryBytes(Workload{}, 100, 0.9) != 0 {
		t.Fatal("empty workload must yield 0")
	}
	if SuggestMemoryBytes(Workload{Arrivals: 1000, Distinct: 100, Skew: 1}, 0, 0.9) != 0 {
		t.Fatal("k=0 must yield 0")
	}
}
