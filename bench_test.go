package sigstream

// One benchmark per table/figure of the paper's evaluation. Each benchmark
// regenerates its figure at quick scale via the internal/exp harness and
// reports the headline metrics (LTC precision/ARE and the strongest
// baseline) as custom benchmark outputs, so
//
//	go test -bench=Fig -benchmem
//
// prints the whole evaluation. For paper-scale numbers use
// cmd/sigbench -scale paper.

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"sigstream/internal/exp"
	"sigstream/internal/gen"
	"sigstream/internal/stream"
)

// benchScale keeps each figure-benchmark iteration around a second.
var benchScale = exp.Scale{
	CAIDA: 150_000, Network: 150_000, Social: 150_000, Zipf: 150_000,
	Seed: 1, Quick: true,
}

// reportSeries attaches the mean of each series' metric to the benchmark.
func reportSeries(b *testing.B, r exp.Result, metric string) {
	b.Helper()
	type agg struct {
		sum float64
		n   int
	}
	byName := map[string]*agg{}
	for _, row := range r.Rows {
		if row.Metric != metric {
			continue
		}
		a := byName[row.Series]
		if a == nil {
			a = &agg{}
			byName[row.Series] = a
		}
		a.sum += row.Value
		a.n++
	}
	for name, a := range byName {
		// Benchmark metric units must not contain whitespace; series names
		// like "LTC 1:10" (Fig 14/15) get underscores.
		unit := strings.ReplaceAll(name, " ", "_") + "-" + metric
		b.ReportMetric(a.sum/float64(a.n), unit)
	}
}

func runFigure(b *testing.B, id, metric string) {
	b.Helper()
	e, ok := exp.Find(id)
	if !ok {
		b.Fatalf("unknown figure %s", id)
	}
	var last exp.Result
	for i := 0; i < b.N; i++ {
		last = e.Run(benchScale)
	}
	if metric != "" {
		reportSeries(b, last, metric)
	}
}

// BenchmarkFig06 regenerates Figure 6 (long-tail frequency distribution).
func BenchmarkFig06(b *testing.B) { runFigure(b, "6", "") }

// BenchmarkFig07a regenerates Figure 7(a) (correct-rate bound vs real).
func BenchmarkFig07a(b *testing.B) { runFigure(b, "7a", "correct-rate") }

// BenchmarkFig07b regenerates Figure 7(b) (error bound vs real).
func BenchmarkFig07b(b *testing.B) { runFigure(b, "7b", "error-rate") }

// BenchmarkFig08a regenerates Figure 8(a) (LTR ablation vs memory).
func BenchmarkFig08a(b *testing.B) { runFigure(b, "8a", "precision") }

// BenchmarkFig08b regenerates Figure 8(b) (LTR ablation vs α:β).
func BenchmarkFig08b(b *testing.B) { runFigure(b, "8b", "precision") }

// BenchmarkFig09 regenerates Figure 9(a–c) (frequent items, precision).
func BenchmarkFig09(b *testing.B) { runFigure(b, "9", "precision") }

// BenchmarkFig09d regenerates Figure 9(d) (frequent items, precision vs k).
func BenchmarkFig09d(b *testing.B) { runFigure(b, "9d", "precision") }

// BenchmarkFig10 regenerates Figure 10(a–c) (frequent items, ARE).
func BenchmarkFig10(b *testing.B) { runFigure(b, "10", "ARE") }

// BenchmarkFig10d regenerates Figure 10(d) (frequent items, ARE vs k).
func BenchmarkFig10d(b *testing.B) { runFigure(b, "10d", "ARE") }

// BenchmarkFig11 regenerates Figure 11 (Deviation Eliminator ablation).
func BenchmarkFig11(b *testing.B) { runFigure(b, "11", "precision") }

// BenchmarkFig12 regenerates Figure 12(a–c) (persistent items, precision).
func BenchmarkFig12(b *testing.B) { runFigure(b, "12", "precision") }

// BenchmarkFig12d regenerates Figure 12(d) (persistent items vs k).
func BenchmarkFig12d(b *testing.B) { runFigure(b, "12d", "precision") }

// BenchmarkFig13 regenerates Figure 13(a–c) (persistent items, ARE).
func BenchmarkFig13(b *testing.B) { runFigure(b, "13", "ARE") }

// BenchmarkFig13d regenerates Figure 13(d) (persistent items, ARE vs k).
func BenchmarkFig13d(b *testing.B) { runFigure(b, "13d", "ARE") }

// BenchmarkFig14 regenerates Figure 14 (significant items, precision).
func BenchmarkFig14(b *testing.B) { runFigure(b, "14", "precision") }

// BenchmarkFig15 regenerates Figure 15 (significant items, ARE).
func BenchmarkFig15(b *testing.B) { runFigure(b, "15", "ARE") }

// BenchmarkFigTput regenerates the throughput comparison.
func BenchmarkFigTput(b *testing.B) { runFigure(b, "tput", "Mops") }

// BenchmarkFigD regenerates the appendix bucket-width sweep.
func BenchmarkFigD(b *testing.B) { runFigure(b, "d", "precision") }

// BenchmarkFigPolicy regenerates the replacement-policy ablation.
func BenchmarkFigPolicy(b *testing.B) { runFigure(b, "policy", "ARE") }

// BenchmarkFigPeriods regenerates the appendix period-count sweep.
func BenchmarkFigPeriods(b *testing.B) { runFigure(b, "periods", "precision") }

// BenchmarkFigZipf regenerates the appendix Zipf-skew sweep.
func BenchmarkFigZipf(b *testing.B) { runFigure(b, "zipf", "precision") }

// BenchmarkFigExt regenerates the extensions regime-shift comparison.
func BenchmarkFigExt(b *testing.B) { runFigure(b, "ext", "recent-precision") }

// --- raw operation benchmarks (public API) ----------------------------------

func benchInsert(b *testing.B, tr Tracker) {
	b.Helper()
	s := gen.NetworkLike(1<<17, 1)
	per := s.ItemsPerPeriod()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(s.Items[i&(1<<17-1)])
		if i%per == per-1 {
			tr.EndPeriod()
		}
	}
}

// BenchmarkInsertLTC measures LTC's per-arrival cost through the public API.
func BenchmarkInsertLTC(b *testing.B) {
	benchInsert(b, New(Config{MemoryBytes: 64 << 10, Weights: Balanced}))
}

// BenchmarkInsertSpaceSaving measures Space-Saving's per-arrival cost.
func BenchmarkInsertSpaceSaving(b *testing.B) {
	benchInsert(b, NewSpaceSaving(64<<10, 1))
}

// BenchmarkInsertCUSketch measures the CU sketch+heap per-arrival cost.
func BenchmarkInsertCUSketch(b *testing.B) {
	benchInsert(b, NewFrequentSketch(CU, 64<<10, 100, 1))
}

// BenchmarkInsertPersistentCU measures the CU+BF persistency adapter.
func BenchmarkInsertPersistentCU(b *testing.B) {
	benchInsert(b, NewPersistentSketch(CU, 64<<10, 100, 1))
}

// benchInsertBatch feeds b.N arrivals in fixed-size batches through the
// BatchInserter path (native or fallback), with the same period cadence as
// benchInsert. ns/op is directly comparable between the two.
func benchInsertBatch(b *testing.B, tr Tracker, batch int) {
	b.Helper()
	s := gen.NetworkLike(1<<17, 1)
	per := s.ItemsPerPeriod()
	mask := 1<<17 - 1
	b.ResetTimer()
	sincePeriod := 0
	for done := 0; done < b.N; {
		start := done & mask
		end := start + batch
		if end > len(s.Items) {
			end = len(s.Items)
		}
		if rem := b.N - done; end-start > rem {
			end = start + rem
		}
		InsertBatch(tr, s.Items[start:end])
		n := end - start
		done += n
		sincePeriod += n
		if sincePeriod >= per {
			tr.EndPeriod()
			sincePeriod = 0
		}
	}
}

// BenchmarkInsertBatchLTC measures LTC's per-arrival cost on the native
// 256-item batch path; compare with BenchmarkInsertLTC.
func BenchmarkInsertBatchLTC(b *testing.B) {
	benchInsertBatch(b, New(Config{MemoryBytes: 64 << 10, Weights: Balanced}), 256)
}

// BenchmarkInsertBatchSpaceSaving measures a baseline driven through the
// generic per-item fallback adapter; compare with
// BenchmarkInsertSpaceSaving to see the adapter overhead is negligible.
func BenchmarkInsertBatchSpaceSaving(b *testing.B) {
	benchInsertBatch(b, NewBaseline(SpaceSaving, Config{MemoryBytes: 64 << 10,
		Weights: Frequent}), 256)
}

// benchShardedParallel hammers one Sharded tracker from 8 goroutines,
// per-item when batch ≤ 0 and via InsertBatch otherwise. ns/op is per
// arrival in both modes, so the items/sec ratio is the inverse ns/op
// ratio.
func benchShardedParallel(b *testing.B, batch int) {
	b.Helper()
	tr := NewSharded(Config{MemoryBytes: 1 << 20, Weights: Balanced,
		ItemsPerPeriod: 1 << 17}, 8)
	s := gen.NetworkLike(1<<17, 1)
	mask := 1<<17 - 1
	const goroutines = 8
	b.ResetTimer()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		n := b.N / goroutines
		if g == 0 {
			n += b.N % goroutines
		}
		wg.Add(1)
		go func(g, n int) {
			defer wg.Done()
			off := g * 1013 // decorrelate the goroutines' positions
			if batch <= 0 {
				for i := 0; i < n; i++ {
					tr.Insert(s.Items[(off+i)&mask])
				}
				return
			}
			for done := 0; done < n; {
				start := (off + done) & mask
				end := start + batch
				if rem := n - done; end-start > rem {
					end = start + rem
				}
				if end > len(s.Items) {
					end = len(s.Items)
				}
				tr.InsertBatch(s.Items[start:end])
				done += end - start
			}
		}(g, n)
	}
	wg.Wait()
}

// BenchmarkShardedInsert measures the per-item Sharded path under
// contention: 8 goroutines, one lock round-trip per arrival.
func BenchmarkShardedInsert(b *testing.B) { benchShardedParallel(b, 0) }

// BenchmarkShardedInsertBatch measures the batched Sharded path under
// contention: 8 goroutines, 256-item batches partitioned by shard, one
// lock round-trip per shard per batch.
func BenchmarkShardedInsertBatch(b *testing.B) { benchShardedParallel(b, 256) }

// benchPipelineIngest drives b.N arrivals through a Pipeline from a single
// producer in 256-item batches, flushing once at the end. ns/op is per
// arrival, directly comparable with benchSyncShardedIngest at the same
// shard count: the difference is what the asynchronous front-end buys (or
// costs) for one producer.
func benchPipelineIngest(b *testing.B, shards int) {
	b.Helper()
	tr := NewSharded(Config{MemoryBytes: 1 << 20, Weights: Balanced,
		ItemsPerPeriod: 1 << 17}, shards)
	p := tr.Pipeline(PipelineOptions{})
	defer p.Close()
	s := gen.NetworkLike(1<<17, 1)
	mask := 1<<17 - 1
	const batch = 256
	b.ResetTimer()
	for done := 0; done < b.N; {
		start := done & mask
		end := start + batch
		if end > len(s.Items) {
			end = len(s.Items)
		}
		if rem := b.N - done; end-start > rem {
			end = start + rem
		}
		if err := p.Submit(s.Items[start:end]); err != nil {
			b.Fatal(err)
		}
		done += end - start
	}
	if err := p.Flush(); err != nil {
		b.Fatal(err)
	}
}

// benchSyncShardedIngest is the synchronous single-producer counterpart:
// the same 256-item batches applied inline via InsertBatch.
func benchSyncShardedIngest(b *testing.B, shards int) {
	b.Helper()
	tr := NewSharded(Config{MemoryBytes: 1 << 20, Weights: Balanced,
		ItemsPerPeriod: 1 << 17}, shards)
	s := gen.NetworkLike(1<<17, 1)
	mask := 1<<17 - 1
	const batch = 256
	b.ResetTimer()
	for done := 0; done < b.N; {
		start := done & mask
		end := start + batch
		if end > len(s.Items) {
			end = len(s.Items)
		}
		if rem := b.N - done; end-start > rem {
			end = start + rem
		}
		tr.InsertBatch(s.Items[start:end])
		done += end - start
	}
}

// BenchmarkPipelineIngest measures single-producer pipelined ingestion at
// 1, 4 and 8 shards; compare against BenchmarkPipelineSyncIngest.
func BenchmarkPipelineIngest(b *testing.B) {
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchPipelineIngest(b, shards)
		})
	}
}

// BenchmarkPipelineSyncIngest measures the synchronous baseline for the
// pipelined figure: same producer, same batches, no rings or workers.
func BenchmarkPipelineSyncIngest(b *testing.B) {
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchSyncShardedIngest(b, shards)
		})
	}
}

// BenchmarkTopKLTC measures top-k query latency on a warm LTC.
func BenchmarkTopKLTC(b *testing.B) {
	s := gen.NetworkLike(1<<17, 1)
	tr := New(Config{MemoryBytes: 64 << 10, Weights: Balanced})
	replay(s, tr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.TopK(100)
	}
}

func replay(s *stream.Stream, tr Tracker) {
	per := s.ItemsPerPeriod()
	for i, it := range s.Items {
		tr.Insert(it)
		if (i+1)%per == 0 {
			tr.EndPeriod()
		}
	}
}
