package sigstream

// Integration tests: drive every public tracker end-to-end on a realistic
// workload and score them against exact ground truth, checking both the
// interface contracts and the paper's headline accuracy ordering.

import (
	"testing"

	"sigstream/internal/gen"
	"sigstream/internal/metrics"
	"sigstream/internal/oracle"
	"sigstream/internal/stream"
)

func workload(t *testing.T) *stream.Stream {
	t.Helper()
	return gen.Generate(gen.Config{
		N: 120_000, M: 12_000, Periods: 40, Skew: 1.0,
		Head: 200, TailWindowFrac: 0.25, Seed: 99,
	})
}

func TestIntegrationFrequent(t *testing.T) {
	s := workload(t)
	o := oracle.FromStream(s, stream.Frequent)
	const mem = 16 << 10
	const k = 100
	trackers := map[string]Tracker{
		"LTC":         New(Config{MemoryBytes: mem, Weights: Frequent, ItemsPerPeriod: s.ItemsPerPeriod()}),
		"SpaceSaving": NewSpaceSaving(mem, 1),
		"LossyCount":  NewLossyCounting(mem, 1),
		"MisraGries":  NewMisraGries(mem, 1),
		"CM":          NewFrequentSketch(CM, mem, k, 1),
		"CU":          NewFrequentSketch(CU, mem, k, 1),
		"Count":       NewFrequentSketch(Count, mem, k, 1),
	}
	scores := map[string]metrics.Report{}
	for name, tr := range trackers {
		per := s.ItemsPerPeriod()
		for i, it := range s.Items {
			tr.Insert(it)
			if (i+1)%per == 0 {
				tr.EndPeriod()
			}
		}
		tr.EndPeriod()
		truth := o.TopK(k)
		reported := tr.TopK(k)
		hits := 0
		truthSet := map[Item]bool{}
		for _, e := range truth {
			truthSet[e.Item] = true
		}
		var relSum float64
		for _, e := range reported {
			if truthSet[e.Item] {
				hits++
			}
			if real, ok := o.Query(e.Item); ok && real.Significance > 0 {
				d := real.Significance - e.Significance
				if d < 0 {
					d = -d
				}
				relSum += d / real.Significance
			}
		}
		scores[name] = metrics.Report{
			Precision: float64(hits) / k,
			ARE:       relSum / k,
		}
	}
	ltc := scores["LTC"]
	if ltc.Precision < 0.85 {
		t.Fatalf("LTC precision %.2f under pressure, want ≥0.85", ltc.Precision)
	}
	for name, r := range scores {
		if name == "LTC" {
			continue
		}
		if r.Precision > ltc.Precision+0.05 {
			t.Errorf("%s precision %.2f beats LTC %.2f", name, r.Precision, ltc.Precision)
		}
	}
}

func TestIntegrationSignificant(t *testing.T) {
	s := workload(t)
	w := Weights{Alpha: 1, Beta: 10}
	o := oracle.FromStream(s, stream.Weights{Alpha: 1, Beta: 10})
	const mem = 16 << 10
	const k = 100
	ltc := New(Config{MemoryBytes: mem, Weights: w, ItemsPerPeriod: s.ItemsPerPeriod()})
	cu := NewSignificantSketch(CU, mem, k, w)
	for _, tr := range []Tracker{ltc, cu} {
		per := s.ItemsPerPeriod()
		for i, it := range s.Items {
			tr.Insert(it)
			if (i+1)%per == 0 {
				tr.EndPeriod()
			}
		}
		tr.EndPeriod()
	}
	score := func(tr Tracker) float64 {
		truth := map[Item]bool{}
		for _, e := range o.TopK(k) {
			truth[e.Item] = true
		}
		hits := 0
		for _, e := range tr.TopK(k) {
			if truth[e.Item] {
				hits++
			}
		}
		return float64(hits) / k
	}
	pLTC, pCU := score(ltc), score(cu)
	if pLTC+0.05 < pCU {
		t.Fatalf("LTC %.2f below CU-sig %.2f on significant items", pLTC, pCU)
	}
	if pLTC < 0.7 {
		t.Fatalf("LTC significant-items precision %.2f implausibly low", pLTC)
	}
}

func TestIntegrationShardedMatchesSingle(t *testing.T) {
	// A sharded tracker with the same total memory should land in the same
	// accuracy class as the single-tracker run.
	s := workload(t)
	o := oracle.FromStream(s, stream.Balanced)
	const k = 100
	sh := NewSharded(Config{MemoryBytes: 32 << 10, Weights: Balanced,
		ItemsPerPeriod: s.ItemsPerPeriod()}, 4)
	per := s.ItemsPerPeriod()
	for i, it := range s.Items {
		sh.Insert(it)
		if (i+1)%per == 0 {
			sh.EndPeriod()
		}
	}
	sh.EndPeriod()
	truth := map[Item]bool{}
	for _, e := range o.TopK(k) {
		truth[e.Item] = true
	}
	hits := 0
	for _, e := range sh.TopK(k) {
		if truth[e.Item] {
			hits++
		}
	}
	if p := float64(hits) / k; p < 0.75 {
		t.Fatalf("sharded precision %.2f, want ≥0.75", p)
	}
}

func TestIntegrationWindowTracksRecentRegime(t *testing.T) {
	// Two traffic regimes: items 1..50 dominate the first half, items
	// 101..150 the second. A window covering the second half must report
	// (almost) only regime-2 items; the unwindowed tracker mixes both.
	const periodsPerHalf = 8
	win := NewWindow(Config{MemoryBytes: 64 << 10, Weights: Frequent}, periodsPerHalf, 4)
	full := New(Config{MemoryBytes: 64 << 10, Weights: Frequent})
	feed := func(tr Tracker, base Item) {
		for p := 0; p < periodsPerHalf; p++ {
			for i := Item(0); i < 50; i++ {
				for j := 0; j < 5; j++ {
					tr.Insert(base + i)
				}
			}
			tr.EndPeriod()
		}
	}
	for _, tr := range []Tracker{win, full} {
		feed(tr, 1)   // first regime
		feed(tr, 101) // second regime
	}
	recent := 0
	for _, e := range win.TopK(50) {
		if e.Item >= 101 {
			recent++
		}
	}
	if recent < 45 {
		t.Fatalf("window top-50 holds only %d recent-regime items", recent)
	}
}
