package sigstream

import (
	"sync"
	"testing"

	"sigstream/internal/stream"
	"sigstream/internal/trackertest"
)

// publicAdapter lets the internal conformance suite drive public trackers.
type publicAdapter struct{ t Tracker }

func (a publicAdapter) Insert(item stream.Item) { a.t.Insert(item) }
func (a publicAdapter) EndPeriod()              { a.t.EndPeriod() }
func (a publicAdapter) Query(item stream.Item) (stream.Entry, bool) {
	e, ok := a.t.Query(item)
	return stream.Entry{Item: e.Item, Frequency: e.Frequency,
		Persistency: e.Persistency, Significance: e.Significance}, ok
}
func (a publicAdapter) TopK(k int) []stream.Entry {
	es := a.t.TopK(k)
	out := make([]stream.Entry, len(es))
	for i, e := range es {
		out[i] = stream.Entry{Item: e.Item, Frequency: e.Frequency,
			Persistency: e.Persistency, Significance: e.Significance}
	}
	return out
}
func (a publicAdapter) MemoryBytes() int { return a.t.MemoryBytes() }
func (a publicAdapter) Name() string     { return a.t.Name() }

func TestPublicLTCContract(t *testing.T) {
	trackertest.Run(t, func(mem int) stream.Tracker {
		return publicAdapter{New(Config{MemoryBytes: mem, Weights: Balanced,
			ItemsPerPeriod: 300})}
	}, trackertest.Options{})
}

func TestShardedContract(t *testing.T) {
	trackertest.Run(t, func(mem int) stream.Tracker {
		return publicAdapter{NewSharded(Config{MemoryBytes: mem,
			Weights: Balanced, ItemsPerPeriod: 300}, 4)}
	}, trackertest.Options{})
}

// TestShardedSoak hammers a sharded tracker with concurrent writers and
// readers for several million operations; run with -race in CI. Skipped in
// -short mode.
func TestShardedSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	tr := NewSharded(Config{MemoryBytes: 256 << 10, Weights: Balanced}, 8)
	const writers = 8
	const perWriter = 250_000
	var wg, readers sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent readers poll TopK and Query while writers ingest.
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tr.TopK(50)
				tr.Query(42)
			}
		}()
	}
	for wID := 0; wID < writers; wID++ {
		wg.Add(1)
		go func(wID int) {
			defer wg.Done()
			// 1000 distinct items over 16k cells: no bucket overflows, so
			// the final frequency sum must be exact — any shortfall is a
			// genuine lost update.
			for i := 0; i < perWriter; i++ {
				tr.Insert(Item(i%1000 + 1))
			}
		}(wID)
	}
	// A single coordinator drives periods, as OPERATIONS.md prescribes.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			tr.EndPeriod()
		}
	}()
	<-done
	wg.Wait()
	close(stop)
	readers.Wait()

	var total uint64
	for _, e := range tr.TopK(1 << 20) {
		total += e.Frequency
	}
	if total != writers*perWriter {
		t.Fatalf("frequency sum %d, want %d (lost updates)", total, writers*perWriter)
	}
}
